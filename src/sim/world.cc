#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/timer.h"
#include "rng/rng.h"
#include "timeutil/date.h"

namespace ipscope::sim {

namespace {

constexpr int kPolicyKinds = 9;
constexpr std::int32_t kYearDays = 364;
// The daily observation period within the year (Aug 17 = day 228).
constexpr std::int32_t kDailyStart = 228;

const char* const kAsTypeNames[] = {"residential-isp", "cellular",
                                    "university",      "enterprise",
                                    "hosting",         "transit"};

AsType SampleAsType(rng::Xoshiro256& g) {
  double u = g.NextDouble();
  if (u < 0.44) return AsType::kResidentialIsp;
  if (u < 0.51) return AsType::kCellular;
  if (u < 0.58) return AsType::kUniversity;
  if (u < 0.79) return AsType::kEnterprise;
  if (u < 0.93) return AsType::kHosting;
  return AsType::kTransit;
}

// Country weight for an AS. Cellular operators concentrate where CGN is
// prevalent (paper §6.3: the gateway-heavy blocks are mostly Asian cellular),
// so cellular ASes bias toward high-CGN countries.
int SampleCountry(rng::Xoshiro256& g, bool cgn_biased) {
  auto countries = geo::Countries();
  auto weight = [&](const geo::CountryInfo& c) {
    return c.address_share * (cgn_biased ? 0.15 + 4.0 * c.cgn_share : 1.0);
  };
  double total = 0;
  for (const auto& c : countries) total += weight(c);
  double u = g.NextDouble() * total;
  double acc = 0;
  for (std::size_t i = 0; i < countries.size(); ++i) {
    acc += weight(countries[i]);
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(countries.size()) - 1;
}

int BlocksForAs(AsType type, rng::Xoshiro256& g) {
  double mu, sigma;
  switch (type) {
    case AsType::kResidentialIsp:
      mu = 3.0;
      sigma = 0.8;
      break;
    case AsType::kCellular:
      // Many mid-sized operators rather than a few giants: keeps CGN
      // deployment geographically mixed at small world scales.
      mu = 2.2;
      sigma = 0.6;
      break;
    case AsType::kUniversity:
      mu = 1.8;
      sigma = 0.6;
      break;
    case AsType::kEnterprise:
      mu = 1.2;
      sigma = 0.7;
      break;
    case AsType::kHosting:
      mu = 1.8;
      sigma = 0.8;
      break;
    case AsType::kTransit:
      mu = 1.4;
      sigma = 0.6;
      break;
  }
  double n = rng::NextLogNormal(g, mu, sigma);
  return std::clamp(static_cast<int>(n), 1, 150);
}

// Policy mixture per AS type, adjusted for the country's CGN prevalence and
// the config's infrastructure share. Indexed by PolicyKind.
std::array<double, kPolicyKinds> PolicyWeights(AsType type,
                                               const geo::CountryInfo& country,
                                               double infra_scale) {
  std::array<double, kPolicyKinds> w{};
  auto set = [&](PolicyKind k, double v) {
    w[static_cast<std::size_t>(k)] = v;
  };
  switch (type) {
    case AsType::kResidentialIsp: {
      double cgn = 0.015 + 0.06 * country.cgn_share;
      set(PolicyKind::kStatic, 0.32);
      set(PolicyKind::kDynamicShort, 0.42 - cgn);  // split below via rotating
      set(PolicyKind::kDynamicLong, 0.14);
      set(PolicyKind::kCgnGateway, cgn);
      set(PolicyKind::kRouterInfra, 0.04);
      set(PolicyKind::kUnused, 0.05);
      break;
    }
    case AsType::kCellular: {
      double cgn = 0.50 + 0.30 * country.cgn_share;
      set(PolicyKind::kCgnGateway, cgn);
      set(PolicyKind::kDynamicShort, std::max(0.05, 0.30 - 0.3 * country.cgn_share));
      set(PolicyKind::kStatic, 0.05);
      set(PolicyKind::kDynamicLong, 0.05);
      set(PolicyKind::kRouterInfra, 0.05);
      set(PolicyKind::kUnused, 0.05);
      break;
    }
    case AsType::kUniversity:
      set(PolicyKind::kStatic, 0.45);
      set(PolicyKind::kDynamicShort, 0.18);
      set(PolicyKind::kDynamicLong, 0.12);
      set(PolicyKind::kServerFarm, 0.15);
      set(PolicyKind::kRouterInfra, 0.05);
      set(PolicyKind::kUnused, 0.05);
      break;
    case AsType::kEnterprise:
      set(PolicyKind::kStatic, 0.62);
      set(PolicyKind::kDynamicLong, 0.08);
      set(PolicyKind::kServerFarm, 0.10);
      set(PolicyKind::kUnused, 0.15);
      set(PolicyKind::kRouterInfra, 0.03);
      set(PolicyKind::kMiddlebox, 0.02);
      break;
    case AsType::kHosting:
      set(PolicyKind::kServerFarm, 0.55);
      set(PolicyKind::kCrawlerBots, 0.12);
      set(PolicyKind::kStatic, 0.10);
      set(PolicyKind::kMiddlebox, 0.08);
      set(PolicyKind::kUnused, 0.10);
      set(PolicyKind::kRouterInfra, 0.05);
      break;
    case AsType::kTransit:
      set(PolicyKind::kRouterInfra, 0.55);
      set(PolicyKind::kMiddlebox, 0.20);
      set(PolicyKind::kUnused, 0.20);
      set(PolicyKind::kServerFarm, 0.05);
      break;
  }
  for (PolicyKind k : {PolicyKind::kServerFarm, PolicyKind::kRouterInfra,
                       PolicyKind::kMiddlebox}) {
    w[static_cast<std::size_t>(k)] *= infra_scale;
  }
  return w;
}

PolicyKind SampleKind(const std::array<double, kPolicyKinds>& w,
                      rng::Xoshiro256& g) {
  double total = std::accumulate(w.begin(), w.end(), 0.0);
  double u = g.NextDouble() * total;
  double acc = 0;
  for (int k = 0; k < kPolicyKinds; ++k) {
    acc += w[static_cast<std::size_t>(k)];
    if (u < acc) return static_cast<PolicyKind>(k);
  }
  return PolicyKind::kUnused;
}

PolicyParams MakeParams(PolicyKind kind, AsType as_type,
                        rng::Xoshiro256& g) {
  PolicyParams p;
  p.kind = kind;
  double u = g.NextDouble();
  switch (kind) {
    case PolicyKind::kUnused:
      break;
    case PolicyKind::kStatic: {
      // 75% small assignments, 25% larger — yields the paper's Fig 8b
      // static curve (three quarters of static /24s below FD 64).
      double u2 = g.NextDouble();
      p.pool_size = static_cast<std::uint16_t>(
          u < 0.78 ? 6 + u2 * 54 : 64 + u2 * 192);
      p.subscribers = p.pool_size;
      p.occupancy = static_cast<float>(0.55 + 0.40 * g.NextDouble());
      bool business = as_type == AsType::kUniversity ||
                      as_type == AsType::kEnterprise;
      p.weekend_factor = static_cast<float>(
          business ? 0.20 + 0.30 * g.NextDouble()
                   : 0.85 + 0.15 * g.NextDouble());
      p.hits_mu = static_cast<float>(2.6 + g.NextDouble());
      p.hits_sigma = static_cast<float>(0.9 + 0.4 * g.NextDouble());
      break;
    }
    case PolicyKind::kDynamicShort: {
      // Residential short-lease pools: 80% dense (Fig 6d), 20% rotating
      // round-robin (Fig 6b). Universities skew toward rotating pools.
      bool rotating = as_type == AsType::kUniversity ? u < 0.7 : u < 0.2;
      p.rotating = rotating;
      if (rotating) {
        p.pool_size = 256;
        p.subscribers =
            static_cast<std::uint16_t>(30 + 90 * g.NextDouble());
        p.daily_p = static_cast<float>(0.30 + 0.30 * g.NextDouble());
      } else {
        // ISPs size 24h-lease pools close to demand: the daily fill rate
        // (subscribers x daily_p / pool) sits near 0.75-1.0, which keeps
        // the day-to-day active set stable (the paper's ~8% daily churn)
        // while still cycling every address through the pool.
        double u2 = g.NextDouble();
        p.pool_size = static_cast<std::uint16_t>(
            u2 < 0.95 ? 256 : 192 + 63 * g.NextDouble());
        p.subscribers = static_cast<std::uint16_t>(
            p.pool_size * (1.10 + 0.35 * g.NextDouble()));
        p.daily_p = static_cast<float>(0.72 + 0.24 * g.NextDouble());
      }
      p.weekend_factor = static_cast<float>(0.85 + 0.13 * g.NextDouble());
      p.hits_mu = static_cast<float>(2.6 + g.NextDouble());
      p.hits_sigma = static_cast<float>(0.9 + 0.4 * g.NextDouble());
      break;
    }
    case PolicyKind::kDynamicLong: {
      p.pool_size =
          static_cast<std::uint16_t>(192 + 64 * g.NextDouble());
      p.subscribers = p.pool_size;
      p.lease_days = static_cast<std::uint16_t>(20 + 70 * g.NextDouble());
      p.occupancy = static_cast<float>(0.50 + 0.45 * g.NextDouble());
      p.weekend_factor = static_cast<float>(0.90 + 0.10 * g.NextDouble());
      p.hits_mu = static_cast<float>(2.6 + g.NextDouble());
      p.hits_sigma = static_cast<float>(0.9 + 0.4 * g.NextDouble());
      break;
    }
    case PolicyKind::kCgnGateway: {
      double u2 = g.NextDouble();
      p.pool_size = static_cast<std::uint16_t>(
          u < 0.90 ? 256 : 96 + 160 * u2);
      p.subscribers = 0xFFFF;  // aggregates thousands of users
      p.hits_mu = static_cast<float>(6.2 + 0.8 * (g.NextDouble() - 0.5));
      p.hits_sigma = 0.5f;
      break;
    }
    case PolicyKind::kCrawlerBots: {
      p.pool_size = static_cast<std::uint16_t>(2 + 22 * u);
      p.hits_mu = static_cast<float>(7.5 + g.NextDouble());
      p.hits_sigma = 0.5f;
      break;
    }
    case PolicyKind::kServerFarm: {
      p.pool_size = static_cast<std::uint16_t>(16 + 112 * u);
      p.daily_p = 0.02f;
      p.hits_mu = 2.0f;
      p.hits_sigma = 1.0f;
      break;
    }
    case PolicyKind::kRouterInfra: {
      p.pool_size = static_cast<std::uint16_t>(8 + 56 * u);
      break;
    }
    case PolicyKind::kMiddlebox: {
      p.pool_size = 256;  // tarpit-style: the whole block answers probes
      break;
    }
  }
  return p;
}

// A reconfiguration flips the block to a contrasting practice so that the
// STU shift is visible (these are the paper's "major change" blocks).
PolicyParams Reconfigure(const PolicyParams& old, AsType as_type,
                         rng::Xoshiro256& g) {
  switch (old.kind) {
    case PolicyKind::kStatic: {
      PolicyParams p = MakeParams(PolicyKind::kDynamicShort, as_type, g);
      p.rotating = false;
      p.pool_size = 256;
      p.subscribers = static_cast<std::uint16_t>(256 * 1.1);
      p.daily_p = 0.55f;
      return p;
    }
    case PolicyKind::kDynamicShort:
    case PolicyKind::kDynamicLong: {
      PolicyParams p = MakeParams(PolicyKind::kStatic, as_type, g);
      p.pool_size = static_cast<std::uint16_t>(8 + 40 * g.NextDouble());
      return p;
    }
    default: {
      PolicyParams p = MakeParams(PolicyKind::kDynamicShort, as_type, g);
      p.rotating = false;
      return p;
    }
  }
}

}  // namespace

const char* AsTypeName(AsType type) {
  return kAsTypeNames[static_cast<std::size_t>(type)];
}

World::World(const WorldConfig& config)
    : config_(config), registry_(config.seed) {
  obs::Span build_span{"sim.world.build_seconds"};
  obs::Span synthesis_span{"sim.world.as_synthesis_seconds"};
  // Policy-assignment time is accumulated per block (it is interleaved with
  // AS synthesis; the RNG draw order must not change) and recorded once.
  double policy_seconds = 0;

  rng::Xoshiro256 g{rng::Substream(config_.seed, 0x3017)};
  const double infra_scale = config_.infra_block_fraction / 0.12;
  auto countries = geo::Countries();

  std::uint32_t next_asn = 1000;
  std::size_t client_blocks = 0;
  while (client_blocks <
         static_cast<std::size_t>(config_.target_client_blocks)) {
    AsPlan as;
    as.asn = next_asn++;
    as.type = SampleAsType(g);
    as.country = static_cast<std::int16_t>(
        SampleCountry(g, as.type == AsType::kCellular));
    int want = BlocksForAs(as.type, g);
    auto weights =
        PolicyWeights(as.type, countries[static_cast<std::size_t>(as.country)],
                      infra_scale);

    // Allocate in contiguous runs of 2..16 blocks (routing aggregates).
    int remaining = want;
    while (remaining > 0) {
      int run = std::min<int>(remaining,
                              2 + static_cast<int>(g.NextBounded(15)));
      auto prefixes = registry_.AllocateContiguous(as.country, run);
      if (prefixes.empty()) {
        auto single = registry_.AllocateBlock(as.country);
        if (!single) break;  // country region exhausted; move on
        prefixes.push_back(*single);
      }
      for (const net::Prefix& prefix : prefixes) {
        BlockPlan plan;
        plan.block = prefix;
        plan.asn = as.asn;
        plan.country = as.country;
        plan.block_seed =
            rng::Substream(config_.seed, 0xB10C, net::BlockKeyOf(prefix));
        obs::Stopwatch policy_watch;
        PolicyKind kind = SampleKind(weights, g);
        plan.base = MakeParams(kind, as.type, g);
        for (std::size_t i = 0; i < plan.host_perm.size(); ++i) {
          plan.host_perm[i] = static_cast<std::uint8_t>(i);
        }
        if (kind == PolicyKind::kStatic) {
          rng::Xoshiro256 pg{rng::Substream(plan.block_seed, 0x9e47)};
          std::shuffle(plan.host_perm.begin(), plan.host_perm.end(), pg);
        }
        policy_seconds += policy_watch.Seconds();
        if (IsClientPolicy(kind) || kind == PolicyKind::kCrawlerBots) {
          ++client_blocks;
        }
        as.block_indices.push_back(
            static_cast<std::uint32_t>(blocks_.size()));
        blocks_.push_back(std::move(plan));
      }
      remaining -= static_cast<int>(prefixes.size());
    }
    if (!as.block_indices.empty()) ases_.push_back(std::move(as));
  }
  client_block_count_ = client_blocks;
  synthesis_span.Stop();
  obs::GlobalRegistry()
      .GetHistogram("sim.world.policy_seconds")
      .Record(policy_seconds);
  obs::Span events_span{"sim.world.events_seconds"};

  // ---- Year-scale events over disjoint slices of the client blocks ------
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
    if (IsClientPolicy(blocks_[i].base.kind)) candidates.push_back(i);
  }
  std::shuffle(candidates.begin(), candidates.end(), g);

  std::size_t pos = 0;
  auto take = [&](double fraction) {
    std::size_t n = static_cast<std::size_t>(
        fraction * static_cast<double>(candidates.size()));
    std::size_t first = pos;
    pos = std::min(pos + n, candidates.size());
    return std::span<const std::uint32_t>{candidates.data() + first,
                                          pos - first};
  };

  // AS type lookup for reconfiguration parameter draws.
  std::vector<AsType> as_type_of_block(blocks_.size(),
                                       AsType::kResidentialIsp);
  for (const AsPlan& as : ases_) {
    for (std::uint32_t bi : as.block_indices) {
      as_type_of_block[bi] = as.type;
    }
  }

  for (std::uint32_t bi : take(config_.reconfig_fraction)) {
    BlockPlan& plan = blocks_[bi];
    // Inside the daily observation window so Fig 7/8a can see the change.
    std::int32_t day =
        kDailyStart + 12 + static_cast<std::int32_t>(g.NextBounded(88));
    BlockEvent event{day, Reconfigure(plan.base, as_type_of_block[bi], g)};
    // A quarter of reconfigurations are spatial (the paper's Fig 7b):
    // only the upper part of the /24 is repurposed, the rest keeps its
    // original practice.
    if (g.NextBool(0.25)) {
      event.host_first = static_cast<std::uint8_t>(128 + g.NextBounded(64));
    }
    plan.events[0] = event;
  }

  for (std::uint32_t bi : take(config_.activate_rate_per_year)) {
    BlockPlan& plan = blocks_[bi];
    plan.active_from = 30 + static_cast<std::int32_t>(g.NextBounded(300));
    double u = g.NextDouble();
    if (u < 0.10) {
      bgp_events_.push_back({plan.active_from, net::BlockKeyOf(plan.block),
                             BgpEventType::kAnnounce, plan.asn});
    } else if (u < 0.13) {
      bgp_events_.push_back({plan.active_from, net::BlockKeyOf(plan.block),
                             BgpEventType::kOriginChange,
                             1000 + g.NextBounded(static_cast<std::uint32_t>(
                                        ases_.size()))});
    }
  }

  for (std::uint32_t bi : take(config_.deactivate_rate_per_year)) {
    BlockPlan& plan = blocks_[bi];
    plan.active_until = 30 + static_cast<std::int32_t>(g.NextBounded(300));
    double u = g.NextDouble();
    if (u < 0.03) {
      bgp_events_.push_back({plan.active_until, net::BlockKeyOf(plan.block),
                             BgpEventType::kWithdraw, 0});
    } else if (u < 0.10) {
      bgp_events_.push_back(
          {plan.active_until + static_cast<std::int32_t>(g.NextBounded(30)),
           net::BlockKeyOf(plan.block), BgpEventType::kOriginChange,
           1000 + g.NextBounded(static_cast<std::uint32_t>(ases_.size()))});
    }
  }

  for (std::uint32_t bi : take(config_.reallocation_rate_per_year)) {
    BlockPlan& plan = blocks_[bi];
    std::int32_t day = 30 + static_cast<std::int32_t>(g.NextBounded(300));
    std::uint32_t new_asn =
        1000 + g.NextBounded(static_cast<std::uint32_t>(ases_.size()));
    bgp_events_.push_back({day, net::BlockKeyOf(plan.block),
                           BgpEventType::kOriginChange, new_asn});
  }

  // Background flaps, independent of activity.
  for (const BlockPlan& plan : blocks_) {
    rng::Xoshiro256 fg{rng::Substream(plan.block_seed, 0xF1A9)};
    auto flaps = rng::NextPoisson(
        fg, config_.bgp_daily_flap_rate * kYearDays);
    for (std::uint64_t f = 0; f < flaps; ++f) {
      bgp_events_.push_back(
          {static_cast<std::int32_t>(fg.NextBounded(kYearDays)),
           net::BlockKeyOf(plan.block), BgpEventType::kFlap, 0});
    }
  }

  std::sort(bgp_events_.begin(), bgp_events_.end());
  events_span.Stop();

  asn_index_.reserve(blocks_.size());
  for (const BlockPlan& plan : blocks_) {
    asn_index_.emplace_back(net::BlockKeyOf(plan.block), plan.asn);
  }
  std::sort(asn_index_.begin(), asn_index_.end());

  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("sim.world.builds").Add(1);
  registry.GetCounter("sim.world.blocks").Add(blocks_.size());
  registry.GetCounter("sim.world.ases").Add(ases_.size());
  registry.GetCounter("sim.world.bgp_events").Add(bgp_events_.size());
}

std::optional<std::uint32_t> World::PlannedAsnOf(net::BlockKey key) const {
  // Binary search on the key-sorted index built at construction. The old
  // linear scan over blocks_ made per-block lookups O(n) and turned callers
  // that resolve every block (per-AS churn grouping) quadratic.
  auto it = std::lower_bound(
      asn_index_.begin(), asn_index_.end(), key,
      [](const std::pair<net::BlockKey, std::uint32_t>& entry,
         net::BlockKey k) { return entry.first < k; });
  if (it == asn_index_.end() || it->first != key) return std::nullopt;
  return it->second;
}

}  // namespace ipscope::sim
