#include "sim/policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "sim/behavior.h"

namespace ipscope::sim {

namespace {

// Substream tags (arbitrary distinct constants).
constexpr std::uint64_t kTagTenure = 0x7e01;
constexpr std::uint64_t kTagOccupant = 0x7e02;
constexpr std::uint64_t kTagActive = 0x7e03;
constexpr std::uint64_t kTagPoolCount = 0x7e04;
constexpr std::uint64_t kTagDense = 0x7e05;
constexpr std::uint64_t kTagLease = 0x7e06;
constexpr std::uint64_t kTagAlwaysOn = 0x7e07;
constexpr std::uint64_t kTagServer = 0x7e08;
constexpr std::uint64_t kTagHits = 0x7e09;
constexpr std::uint64_t kTagShortOccupant = 0x7e0a;
constexpr std::uint64_t kTagWeekend = 0x7e0b;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Subscriber activity comes in multi-day runs (people browse for a few
// days, pause for a few days), not as independent daily coin flips. At
// daily granularity the activity decision is therefore made once per run
// of R days (R in 1..4, a persistent per-subscriber trait); this halves
// spurious day-to-day churn for statically-held addresses, matching the
// paper's ~8% daily up/down rate. Coarser steps subsume runs entirely.
bool SubscriberActive(std::uint64_t block_seed, std::uint64_t occupant,
                      int slot, int step, int step_days, double p_day) {
  int run = 1;
  int index = step;
  if (step_days == 1) {
    run = 1 + static_cast<int>((occupant >> 33) & 3u);
    int phase = static_cast<int>((occupant >> 40) %
                                 static_cast<unsigned>(run));
    index = (step + phase) / run;
  }
  double p_step = StepProbability(std::min(0.98, p_day), step_days);
  std::uint64_t h = rng::Substream(block_seed, kTagActive, slot, index);
  return HashUnit(h) < p_step;
}

// Weekend suppression applied on top of run-level activity, so weekday
// marginals stay p and weekend marginals p * weekend_factor.
bool WeekendPass(std::uint64_t block_seed, int slot, int step,
                 double weekend_adj) {
  if (weekend_adj >= 1.0) return true;
  std::uint64_t h = rng::Substream(block_seed, kTagWeekend, slot, step);
  return HashUnit(h) < weekend_adj;
}

bool IsWeekendDay(std::int32_t abs_day) {
  return (timeutil::kWeeklyPeriodStart + abs_day).IsWeekend();
}

// Expected active days within the step for a subscriber with step
// probability p_step and daily probability p_day — used to scale hit counts
// at coarse granularities.
int ActiveDaysInStep(double p_day, int step_days) {
  if (step_days == 1) return 1;
  int d = static_cast<int>(std::lround(p_day * step_days));
  return std::clamp(d, 1, step_days);
}

}  // namespace

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kUnused:
      return "unused";
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kDynamicShort:
      return "dynamic-short";
    case PolicyKind::kDynamicLong:
      return "dynamic-long";
    case PolicyKind::kCgnGateway:
      return "cgn-gateway";
    case PolicyKind::kCrawlerBots:
      return "crawler-bots";
    case PolicyKind::kServerFarm:
      return "server-farm";
    case PolicyKind::kRouterInfra:
      return "router-infra";
    case PolicyKind::kMiddlebox:
      return "middlebox";
  }
  return "?";
}

const PolicyParams& BlockPlan::ParamsOn(std::int32_t abs_day) const {
  const PolicyParams* current = &base;
  for (const BlockEvent& ev : events) {
    if (ev.day >= 0 && ev.day <= abs_day) current = &ev.params;
  }
  return *current;
}

void GenerateStep(const BlockPlan& plan, const StepSpec& spec, int step,
                  activity::DayBits& bits, std::uint32_t* hits256,
                  std::uint64_t* occupants256) {
  bits = activity::DayBits{};
  if (hits256 != nullptr) std::fill_n(hits256, 256, 0u);
  if (occupants256 != nullptr) std::fill_n(occupants256, 256, std::uint64_t{0});

  const std::int32_t abs_day = spec.start_day + step * spec.step_days;
  const std::int32_t mid_day = abs_day + spec.step_days / 2;
  if (mid_day < plan.active_from || mid_day >= plan.active_until) return;

  // Per-host policy ownership: the base policy, overridden by every active
  // event over its host range. Full-range events (the common case) replace
  // the whole block; partial events create the paper's Fig 7b spatially
  // split patterns.
  std::array<const PolicyParams*, 256> owner;
  owner.fill(&plan.base);
  for (const BlockEvent& ev : plan.events) {
    if (ev.day < 0 || ev.day > mid_day) continue;
    for (int h = ev.host_first; h <= static_cast<int>(ev.host_last); ++h) {
      owner[static_cast<std::size_t>(h)] = &ev.params;
    }
  }

  // Lazily-seeded generator for hit magnitudes. Consumed only when hits are
  // requested, so activity bits never depend on it.
  rng::Xoshiro256 hit_gen{
      rng::Substream(plan.block_seed, kTagHits, step)};

  // Emits one policy's activity, materializing only hosts within
  // [seg_lo, seg_hi] — the segment this policy currently governs.
  auto emit_segment = [&](const PolicyParams& pp, int seg_lo, int seg_hi) {
  const int pool = std::min<int>(pp.pool_size, 256);
  if (pool == 0) return;

  // Weekend adjustment applies only at daily granularity; a 7-day step
  // always contains the same weekday mix.
  const double weekend_adj =
      (spec.step_days == 1 && IsWeekendDay(abs_day)) ? pp.weekend_factor : 1.0;

  auto emit = [&](int host, double propensity, double p_day,
                  std::uint64_t occupant) {
    if (host < seg_lo || host > seg_hi) return;
    activity::SetBit(bits, host);
    if (occupants256 != nullptr) occupants256[host] = occupant;
    if (hits256 == nullptr) return;
    std::uint32_t daily =
        DailyHits(hit_gen, pp.hits_mu, pp.hits_sigma, propensity);
    std::uint64_t total = std::uint64_t{daily} *
                          ActiveDaysInStep(p_day, spec.step_days);
    hits256[host] =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(total, 1u << 30));
  };

  switch (pp.kind) {
    case PolicyKind::kUnused:
    case PolicyKind::kRouterInfra:
    case PolicyKind::kMiddlebox:
      // No successful WWW transactions, ever (paper §3.3).
      return;

    case PolicyKind::kStatic: {
      // One slot per subscriber, scattered across the /24 by host_perm.
      // Customer turnover ("tenure epochs") makes individual addresses
      // appear/disappear over the year without any network event.
      for (int slot = 0; slot < pool; ++slot) {
        std::uint64_t tenure_h =
            rng::Substream(plan.block_seed, kTagTenure, slot);
        int tenure_days = 150 + static_cast<int>(tenure_h & 511u);
        int phase = static_cast<int>((tenure_h >> 16) %
                                     static_cast<unsigned>(tenure_days));
        int epoch = (mid_day + phase) / tenure_days;
        std::uint64_t occ =
            rng::Substream(plan.block_seed, kTagOccupant, slot, epoch);
        if (HashUnit(occ) >= pp.occupancy) continue;  // slot has no customer
        double p_day = SubscriberPropensity(occ);
        if (SubscriberActive(plan.block_seed, occ, slot, step,
                             spec.step_days, p_day) &&
            WeekendPass(plan.block_seed, slot, step, weekend_adj)) {
          emit(plan.host_perm[static_cast<std::size_t>(slot)],
               SubscriberPropensity(occ), std::min(0.98, p_day * weekend_adj),
               occ);
        }
      }
      return;
    }

    case PolicyKind::kDynamicShort: {
      const double p_day = std::min(0.98, double{pp.daily_p} * weekend_adj);
      const double p_step = StepProbability(p_day, spec.step_days);
      if (pp.rotating) {
        // Round-robin band assignment (Fig 6b): today's active subscribers
        // occupy a contiguous address band that advances every step.
        rng::Xoshiro256 g{
            rng::Substream(plan.block_seed, kTagPoolCount, step)};
        auto n = static_cast<int>(
            rng::NextBinomial(g, pp.subscribers, p_step));
        n = std::min(n, pool);
        int stride = std::max<int>(
            1, static_cast<int>(pp.subscribers * double{pp.daily_p}));
        int start = static_cast<int>(
            (plan.block_seed + static_cast<std::uint64_t>(step) *
                                   static_cast<std::uint64_t>(stride)) %
            static_cast<std::uint64_t>(pool));
        for (int j = 0; j < n; ++j) {
          int slot = (start + j) % pool;
          std::uint64_t occ = rng::Substream(plan.block_seed,
                                             kTagShortOccupant, step, j);
          emit(slot, SubscriberPropensity(occ), p_day, occ);
        }
      } else {
        // Dense ~24h-lease pool (Fig 6d): every step re-deals addresses, so
        // each slot is occupied independently with the pool's fill rate.
        // The cap below 1.0 reflects DHCP reality: even saturated pools
        // always have a few addresses between leases, so only gateways
        // (kCgnGateway) reach ~100% spatio-temporal utilization.
        double fill = std::min(
            0.95, static_cast<double>(pp.subscribers) * p_step / pool);
        for (int slot = 0; slot < pool; ++slot) {
          std::uint64_t h =
              rng::Substream(plan.block_seed, kTagDense, slot, step);
          if (HashUnit(h) < fill) {
            std::uint64_t occ = rng::Substream(plan.block_seed,
                                               kTagShortOccupant, slot, step);
            emit(slot, SubscriberPropensity(occ), p_day, occ);
          }
        }
      }
      return;
    }

    case PolicyKind::kDynamicLong: {
      // Long leases (Fig 6c): an address keeps its subscriber for
      // lease_days; heavy subscribers produce near-continuous runs.
      const int lease = std::max<int>(1, pp.lease_days);
      for (int slot = 0; slot < pool; ++slot) {
        std::uint64_t slot_h =
            rng::Substream(plan.block_seed, kTagLease, slot);
        int phase = static_cast<int>(slot_h % static_cast<unsigned>(lease));
        int epoch = (mid_day + phase) / lease;
        std::uint64_t occ =
            rng::Substream(plan.block_seed, kTagOccupant, slot, epoch);
        if (HashUnit(occ) >= pp.occupancy) continue;
        double p_day = SubscriberPropensity(occ);
        if (SubscriberActive(plan.block_seed, occ, slot, step,
                             spec.step_days, p_day) &&
            WeekendPass(plan.block_seed, slot, step, weekend_adj)) {
          emit(slot, SubscriberPropensity(occ),
               std::min(0.98, p_day * weekend_adj), occ);
        }
      }
      return;
    }

    case PolicyKind::kCgnGateway: {
      // Gateways aggregate thousands of users: active essentially always,
      // with traffic that grows across the year (Fig 9c's consolidation).
      const double p_on = StepProbability(0.999, spec.step_days);
      const double growth =
          spec.gateway_growth * (static_cast<double>(mid_day) / 364.0);
      for (int slot = 0; slot < pool; ++slot) {
        std::uint64_t h =
            rng::Substream(plan.block_seed, kTagAlwaysOn, slot, step);
        if (HashUnit(h) >= p_on) continue;
        if (slot < seg_lo || slot > seg_hi) continue;
        activity::SetBit(bits, slot);
        if (hits256 != nullptr) {
          double v = rng::NextLogNormal(hit_gen, double{pp.hits_mu} + growth,
                                        double{pp.hits_sigma});
          v = std::min(v * spec.step_days, 1.0e9);
          hits256[slot] = static_cast<std::uint32_t>(std::max(v, 1.0));
        }
      }
      return;
    }

    case PolicyKind::kCrawlerBots: {
      const double p_on = StepProbability(0.98, spec.step_days);
      for (int slot = 0; slot < pool; ++slot) {
        std::uint64_t h =
            rng::Substream(plan.block_seed, kTagAlwaysOn, slot, step);
        if (HashUnit(h) >= p_on) continue;
        if (slot < seg_lo || slot > seg_hi) continue;
        activity::SetBit(bits, slot);
        if (hits256 != nullptr) {
          double v = rng::NextLogNormal(hit_gen, pp.hits_mu, pp.hits_sigma);
          v = std::min(v * spec.step_days, 1.0e9);
          hits256[slot] = static_cast<std::uint32_t>(std::max(v, 1.0));
        }
      }
      return;
    }

    case PolicyKind::kServerFarm: {
      // Servers occasionally fetch WWW content (software updates, origin
      // pulls) — a trickle of CDN visibility, far below client levels.
      const double p_step = StepProbability(double{pp.daily_p}, spec.step_days);
      for (int slot = 0; slot < pool; ++slot) {
        std::uint64_t h =
            rng::Substream(plan.block_seed, kTagServer, slot, step);
        if (HashUnit(h) < p_step) {
          emit(slot, 0.1, pp.daily_p,
               rng::Substream(plan.block_seed, kTagOccupant, slot));
        }
      }
      return;
    }
  }
  };  // emit_segment

  // Walk the per-host ownership array as maximal runs and render each
  // governing policy over its segment.
  int seg_lo = 0;
  while (seg_lo < 256) {
    int seg_hi = seg_lo;
    while (seg_hi + 1 < 256 &&
           owner[static_cast<std::size_t>(seg_hi + 1)] ==
               owner[static_cast<std::size_t>(seg_lo)]) {
      ++seg_hi;
    }
    emit_segment(*owner[static_cast<std::size_t>(seg_lo)], seg_lo, seg_hi);
    seg_lo = seg_hi + 1;
  }
}

// --- Slot-major batch kernels (GenerateBlock) ----------------------------
//
// GenerateStep above is the per-step reference: step-major, one hash chain
// per (slot, step) decision, per-bit emission. The kernels below produce
// bit-identical activity by transposing the loop nest to slot-major — legal
// because every rng::Substream draw is a pure function of (seed, tags...),
// so evaluating the same draws in a different order, or skipping draws
// whose results never influence a bit, cannot change any result. Per-slot
// quantities (tenure epoch schedule, occupant identity, propensity, the
// multi-day activity-run decision) are then hoisted out of the step sweep
// and the per-step hash collapses to one SplitMix64 round via
// rng::SubstreamTail.

namespace {

constexpr std::int32_t MidOf(const StepSpec& spec, int step) {
  return spec.start_day + step * spec.step_days + spec.step_days / 2;
}

// Shared kernel for the two epoch-occupant policies. kStatic derives the
// per-slot epoch period from the tenure hash and scatters slots through
// host_perm; kDynamicLong uses the fixed lease length and identity mapping.
void EpochKernel(const BlockPlan& plan, const StepSpec& spec,
                 const PolicyParams& pp, bool is_static,
                 const activity::DayBits& mask, int s0, int s1,
                 const std::uint8_t* weekend, activity::DayBits* rows) {
  const int pool = std::min<int>(pp.pool_size, 256);
  const bool daily = spec.step_days == 1;
  const bool weekend_gated = pp.weekend_factor < 1.0f;
  const double weekend_adj = double{pp.weekend_factor};
  for (int slot = 0; slot < pool; ++slot) {
    const int host =
        is_static ? plan.host_perm[static_cast<std::size_t>(slot)] : slot;
    if (!activity::TestBit(mask, host)) continue;
    int period;
    int phase;
    if (is_static) {
      std::uint64_t tenure_h =
          rng::Substream(plan.block_seed, kTagTenure, slot);
      period = 150 + static_cast<int>(tenure_h & 511u);
      phase = static_cast<int>((tenure_h >> 16) %
                               static_cast<unsigned>(period));
    } else {
      period = std::max<int>(1, pp.lease_days);
      std::uint64_t slot_h = rng::Substream(plan.block_seed, kTagLease, slot);
      phase = static_cast<int>(slot_h % static_cast<unsigned>(period));
    }
    const rng::SubstreamTail occ_tail{plan.block_seed, kTagOccupant, slot};
    const rng::SubstreamTail act_tail{plan.block_seed, kTagActive, slot};
    const rng::SubstreamTail wk_tail{plan.block_seed, kTagWeekend, slot};
    constexpr std::int32_t kNever = std::numeric_limits<std::int32_t>::min();
    std::int32_t epoch_end = kNever;  // first mid-day of the next epoch
    bool occupied = false;
    double p_step = 0.0;
    int run = 1;
    int run_phase = 0;
    std::int32_t run_end = kNever;  // first step of the next activity run
    bool active = false;
    for (int s = s0; s < s1; ++s) {
      const std::int32_t mid = MidOf(spec, s);
      if (mid >= epoch_end) {
        const int epoch = (mid + phase) / period;
        epoch_end = (epoch + 1) * period - phase;
        const std::uint64_t occ =
            occ_tail.At(static_cast<std::uint64_t>(epoch));
        occupied = HashUnit(occ) < pp.occupancy;
        if (occupied) {
          const double p_day = SubscriberPropensity(occ);
          p_step = StepProbability(std::min(0.98, p_day), spec.step_days);
          run = 1;
          run_phase = 0;
          if (daily) {
            run = 1 + static_cast<int>((occ >> 33) & 3u);
            run_phase = static_cast<int>((occ >> 40) %
                                         static_cast<unsigned>(run));
          }
          run_end = kNever;  // new occupant: stale run decision
        }
      }
      if (!occupied) continue;
      if (daily) {
        if (s >= run_end) {
          const int index = (s + run_phase) / run;
          run_end = (index + 1) * run - run_phase;
          active =
              HashUnit(act_tail.At(static_cast<std::uint64_t>(index))) <
              p_step;
        }
      } else {
        active = HashUnit(act_tail.At(static_cast<std::uint64_t>(s))) < p_step;
      }
      if (!active) continue;
      if (weekend_gated && weekend[s] != 0 &&
          !(HashUnit(wk_tail.At(static_cast<std::uint64_t>(s))) <
            weekend_adj)) {
        continue;
      }
      activity::SetBit(rows[s], host);
    }
  }
}

// kDynamicShort, dense variant: one hash per (slot, step) is inherent, but
// the fill thresholds are per-step constants shared by all slots, so they
// are precomputed once and the inner sweep is a single SubstreamTail round
// plus a compare.
void DenseShortKernel(const BlockPlan& plan, const StepSpec& spec,
                      const PolicyParams& pp, const activity::DayBits& mask,
                      int s0, int s1, const std::uint8_t* weekend,
                      std::vector<double>& fill, activity::DayBits* rows) {
  const int pool = std::min<int>(pp.pool_size, 256);
  fill.resize(static_cast<std::size_t>(s1));
  for (int s = s0; s < s1; ++s) {
    const double weekend_adj = weekend[s] != 0 ? double{pp.weekend_factor}
                                               : 1.0;
    const double p_day = std::min(0.98, double{pp.daily_p} * weekend_adj);
    const double p_step = StepProbability(p_day, spec.step_days);
    fill[static_cast<std::size_t>(s)] =
        std::min(0.95, static_cast<double>(pp.subscribers) * p_step / pool);
  }
  for (int slot = 0; slot < pool; ++slot) {
    if (!activity::TestBit(mask, slot)) continue;
    const rng::SubstreamTail dense_tail{plan.block_seed, kTagDense, slot};
    for (int s = s0; s < s1; ++s) {
      if (HashUnit(dense_tail.At(static_cast<std::uint64_t>(s))) <
          fill[static_cast<std::size_t>(s)]) {
        activity::SetBit(rows[s], slot);
      }
    }
  }
}

// kDynamicShort, rotating variant: per-step work by nature (the band
// advances every step), but the band is a contiguous range mod pool, so it
// is built with word-level range masks instead of per-bit emission.
void RotatingShortKernel(const BlockPlan& plan, const StepSpec& spec,
                         const PolicyParams& pp,
                         const activity::DayBits& mask, int s0, int s1,
                         const std::uint8_t* weekend,
                         activity::DayBits* rows) {
  const int pool = std::min<int>(pp.pool_size, 256);
  const int stride = std::max<int>(
      1, static_cast<int>(pp.subscribers * double{pp.daily_p}));
  const rng::SubstreamTail count_tail{plan.block_seed, kTagPoolCount};
  for (int s = s0; s < s1; ++s) {
    const double weekend_adj = weekend[s] != 0 ? double{pp.weekend_factor}
                                               : 1.0;
    const double p_day = std::min(0.98, double{pp.daily_p} * weekend_adj);
    const double p_step = StepProbability(p_day, spec.step_days);
    rng::Xoshiro256 g{count_tail.At(static_cast<std::uint64_t>(s))};
    int n = static_cast<int>(rng::NextBinomial(g, pp.subscribers, p_step));
    n = std::min(n, pool);
    if (n <= 0) continue;
    const int start = static_cast<int>(
        (plan.block_seed + static_cast<std::uint64_t>(s) *
                               static_cast<std::uint64_t>(stride)) %
        static_cast<std::uint64_t>(pool));
    activity::DayBits band{};
    if (start + n <= pool) {
      activity::SetBitRange(band, start, start + n);
    } else {
      activity::SetBitRange(band, start, pool);
      activity::SetBitRange(band, 0, start + n - pool);
    }
    rows[s] = activity::OrBits(rows[s], activity::AndBits(band, mask));
  }
}

// kCgnGateway / kCrawlerBots / kServerFarm: independent per-(slot, step)
// coin flips against one constant threshold.
void FlatKernel(std::uint64_t block_seed, std::uint64_t tag, double p_on,
                int pool, const activity::DayBits& mask, int s0, int s1,
                activity::DayBits* rows) {
  for (int slot = 0; slot < pool; ++slot) {
    if (!activity::TestBit(mask, slot)) continue;
    const rng::SubstreamTail tail{block_seed, tag, slot};
    for (int s = s0; s < s1; ++s) {
      if (HashUnit(tail.At(static_cast<std::uint64_t>(s))) < p_on) {
        activity::SetBit(rows[s], slot);
      }
    }
  }
}

// Renders one policy's activity over steps [s0, s1) into the hosts selected
// by `mask` — the slot-major counterpart of emit_segment in GenerateStep.
void RenderPolicy(const BlockPlan& plan, const StepSpec& spec,
                  const PolicyParams& pp, const activity::DayBits& mask,
                  int s0, int s1, const std::uint8_t* weekend,
                  std::vector<double>& fill_scratch,
                  activity::DayBits* rows) {
  const int pool = std::min<int>(pp.pool_size, 256);
  if (pool == 0) return;
  switch (pp.kind) {
    case PolicyKind::kUnused:
    case PolicyKind::kRouterInfra:
    case PolicyKind::kMiddlebox:
      return;
    case PolicyKind::kStatic:
      EpochKernel(plan, spec, pp, /*is_static=*/true, mask, s0, s1, weekend,
                  rows);
      return;
    case PolicyKind::kDynamicLong:
      EpochKernel(plan, spec, pp, /*is_static=*/false, mask, s0, s1, weekend,
                  rows);
      return;
    case PolicyKind::kDynamicShort:
      if (pp.rotating) {
        RotatingShortKernel(plan, spec, pp, mask, s0, s1, weekend, rows);
      } else {
        DenseShortKernel(plan, spec, pp, mask, s0, s1, weekend, fill_scratch,
                         rows);
      }
      return;
    case PolicyKind::kCgnGateway:
      FlatKernel(plan.block_seed, kTagAlwaysOn,
                 StepProbability(0.999, spec.step_days), pool, mask, s0, s1,
                 rows);
      return;
    case PolicyKind::kCrawlerBots:
      FlatKernel(plan.block_seed, kTagAlwaysOn,
                 StepProbability(0.98, spec.step_days), pool, mask, s0, s1,
                 rows);
      return;
    case PolicyKind::kServerFarm:
      FlatKernel(plan.block_seed, kTagServer,
                 StepProbability(double{pp.daily_p}, spec.step_days), pool,
                 mask, s0, s1, rows);
      return;
  }
}

}  // namespace

void GenerateBlock(const BlockPlan& plan, const StepSpec& spec,
                   activity::DayBits* rows) {
  const int steps = spec.steps;
  std::fill_n(rows, steps, activity::DayBits{});
  if (steps <= 0) return;

  // Mid-days increase strictly with the step index, so the activation
  // window maps to one contiguous step interval [s_lo, s_hi).
  int s_lo = 0;
  while (s_lo < steps && MidOf(spec, s_lo) < plan.active_from) ++s_lo;
  int s_hi = s_lo;
  while (s_hi < steps && MidOf(spec, s_hi) < plan.active_until) ++s_hi;
  if (s_lo >= s_hi) return;

  // Weekend flags per step, shared by every policy below. Weekend
  // suppression only exists at daily granularity (a 7-day step always
  // contains the same weekday mix), so weekday arithmetic replaces a
  // calendar lookup per (slot, step).
  std::vector<std::uint8_t> weekend(static_cast<std::size_t>(steps), 0);
  if (spec.step_days == 1) {
    const int wd0 = (timeutil::kWeeklyPeriodStart + spec.start_day).Weekday();
    for (int s = 0; s < steps; ++s) {
      weekend[static_cast<std::size_t>(s)] =
          static_cast<std::uint8_t>((wd0 + s) % 7 >= 5);
    }
  }

  // Step-interval boundaries where the per-host ownership map can change:
  // each event's first effective step. Within an interval ownership is
  // constant, so the owner table is built once per interval instead of once
  // per step.
  int bounds[3];
  int nb = 0;
  bounds[nb++] = s_lo;
  for (const BlockEvent& ev : plan.events) {
    if (ev.day < 0) continue;
    int s = s_lo;
    while (s < s_hi && MidOf(spec, s) < ev.day) ++s;
    if (s > s_lo && s < s_hi) bounds[nb++] = s;
  }
  // bounds[0] == s_lo is minimal by construction; order the event entries.
  if (nb == 3 && bounds[1] > bounds[2]) std::swap(bounds[1], bounds[2]);

  std::vector<double> fill_scratch;  // sized lazily by the dense kernel
  for (int b = 0; b < nb; ++b) {
    const int i0 = bounds[b];
    const int i1 = b + 1 < nb ? bounds[b + 1] : s_hi;
    if (i0 >= i1) continue;  // duplicate boundary (two events, same step)
    // Ownership on this interval, then grouped into per-policy host masks
    // (full-range events collapse to a single mask; partial events produce
    // the paper's Fig 7b spatial splits).
    const std::int32_t mid0 = MidOf(spec, i0);
    std::array<const PolicyParams*, 256> owner;
    owner.fill(&plan.base);
    for (const BlockEvent& ev : plan.events) {
      if (ev.day < 0 || ev.day > mid0) continue;
      for (int h = ev.host_first; h <= static_cast<int>(ev.host_last); ++h) {
        owner[static_cast<std::size_t>(h)] = &ev.params;
      }
    }
    const PolicyParams* params[3];
    activity::DayBits masks[3];
    int np = 0;
    for (int h = 0; h < 256; ++h) {
      const PolicyParams* pp = owner[static_cast<std::size_t>(h)];
      int k = 0;
      while (k < np && params[k] != pp) ++k;
      if (k == np) {
        params[np] = pp;
        masks[np] = activity::DayBits{};
        ++np;
      }
      activity::SetBit(masks[k], h);
    }
    for (int k = 0; k < np; ++k) {
      RenderPolicy(plan, spec, *params[k], masks[k], i0, i1, weekend.data(),
                   fill_scratch, rows);
    }
  }
}

}  // namespace ipscope::sim
