#include "sim/growth.h"

#include <algorithm>
#include <cmath>

#include "rng/rng.h"

namespace ipscope::sim {

namespace {

constexpr ExhaustionEvent kExhaustions[] = {
    {"IANA", 2011, 2},   {"APNIC", 2011, 4},   {"RIPE", 2012, 9},
    {"LACNIC", 2014, 6}, {"ARIN", 2015, 9},
};

}  // namespace

std::span<const ExhaustionEvent> RirExhaustionDates() { return kExhaustions; }

GrowthSeries GenerateGrowthHistory(std::uint64_t seed, double scale) {
  GrowthSeries out;
  rng::Xoshiro256 g{rng::Substream(seed, 0x6704)};

  // Month index 0 = 2008-01; the demand/supply break is 2014-01 (m = 72).
  constexpr int kMonths = 102;  // through 2016-06
  constexpr int kBreak = 72;
  constexpr double kBase = 280e6;
  constexpr double kDemandSlope = 7.3e6;   // addresses/month, linear demand
  constexpr double kPostSupplySlope = 0.8e6;  // residual post-exhaustion

  std::vector<double> xs, ys;
  for (int m = 0; m < kMonths; ++m) {
    double demand = kBase + kDemandSlope * m;
    double supply = kBase + kDemandSlope * std::min(m, kBreak) +
                    kPostSupplySlope * std::max(0, m - kBreak);
    double active = std::min(demand, supply);
    active *= 1.0 + 0.012 * rng::NextNormal(g);  // observation noise
    active *= scale;

    MonthlyCount mc;
    mc.year = 2008 + m / 12;
    mc.month = 1 + m % 12;
    mc.active_ips = active;
    out.series.push_back(mc);

    if (m < kBreak) {
      xs.push_back(static_cast<double>(m));
      ys.push_back(active);
    }
  }
  out.pre2014_fit = stats::FitLinear(xs, ys);
  return out;
}

}  // namespace ipscope::sim
