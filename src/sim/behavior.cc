// behavior.h is header-only; this TU anchors the target.
#include "sim/behavior.h"
