// The simulated Internet: ASes, address blocks, policies, and events.
//
// World is pure *plan*: constructing one is cheap (no activity is generated
// here) and completely deterministic in the config seed. Observation layers
// (cdn, scan, bgp, rdns) read the plan; the analysis layer never touches it
// except through those observations. Tests use the plan itself as ground
// truth to validate inference (rDNS tagging, pattern classification,
// capture–recapture).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geo/registry.h"
#include "netbase/prefix.h"
#include "sim/config.h"
#include "sim/events.h"
#include "sim/policy.h"

namespace ipscope::sim {

enum class AsType : std::uint8_t {
  kResidentialIsp,
  kCellular,
  kUniversity,
  kEnterprise,
  kHosting,
  kTransit,
};

const char* AsTypeName(AsType type);

struct AsPlan {
  std::uint32_t asn = 0;
  AsType type = AsType::kResidentialIsp;
  std::int16_t country = -1;
  std::vector<std::uint32_t> block_indices;  // indices into World::blocks()
};

class World {
 public:
  explicit World(const WorldConfig& config = WorldConfig{});

  const WorldConfig& config() const { return config_; }
  const geo::Registry& registry() const { return registry_; }

  std::span<const AsPlan> ases() const { return ases_; }
  std::span<const BlockPlan> blocks() const { return blocks_; }

  // BGP events sorted by (block, day). Includes reallocation origin
  // changes, activation announces, deactivation withdrawals, and background
  // flaps.
  std::span<const BgpScheduledEvent> bgp_events() const { return bgp_events_; }

  // Origin AS of a block at the start of the year (before any events), or
  // nullopt for unallocated space.
  std::optional<std::uint32_t> PlannedAsnOf(net::BlockKey key) const;

  // Number of blocks whose policy makes them CDN-visible clients
  // (IsClientPolicy or crawler bots).
  std::size_t client_block_count() const { return client_block_count_; }

 private:
  WorldConfig config_;
  geo::Registry registry_;
  std::vector<AsPlan> ases_;
  std::vector<BlockPlan> blocks_;
  std::vector<BgpScheduledEvent> bgp_events_;
  // (key, asn) sorted by key; blocks_ itself is in allocation order, which
  // is not globally key-sorted, so PlannedAsnOf needs its own index.
  std::vector<std::pair<net::BlockKey, std::uint32_t>> asn_index_;
  std::size_t client_block_count_ = 0;
};

}  // namespace ipscope::sim
