// World configuration: the knobs of the simulated Internet.
//
// Defaults are tuned so that the full experiment suite reproduces the
// paper's qualitative shapes at laptop scale (a few thousand /24 blocks,
// a few hundred ASes). Scaling `target_client_blocks` up/down scales every
// absolute count while preserving proportions.
#pragma once

#include <cstdint>

namespace ipscope::sim {

struct WorldConfig {
  std::uint64_t seed = 20160360;  // arXiv id of the paper

  // Approximate number of client /24 blocks. The builder creates ASes until
  // this many client blocks have been allocated.
  int target_client_blocks = 6000;

  // Infrastructure-only blocks (servers, routers, middleboxes) as a fraction
  // of client blocks. These are the "other activity" of paper §3.3: visible
  // to ICMP/port scans but (almost) never to the CDN.
  double infra_block_fraction = 0.12;

  // Fraction of client blocks that undergo a mid-period change of address
  // assignment practice (paper §5.2 finds 9.8% major-change blocks).
  double reconfig_fraction = 0.10;

  // Year-scale block events per year (paper §4.3): blocks whose activity
  // turns on / off mid-year without leaving the AS, plus reallocations that
  // do change the BGP origin.
  double activate_rate_per_year = 0.10;
  double deactivate_rate_per_year = 0.09;
  double reallocation_rate_per_year = 0.02;

  // Background BGP noise: expected fraction of announced prefixes that flap
  // (withdraw + re-announce) per day without any activity consequence.
  double bgp_daily_flap_rate = 0.0001;

  // Growth of gateway/heavy-hitter traffic across the year, in natural-log
  // units per year (drives Fig 9c's consolidation trend).
  double gateway_traffic_growth = 0.18;

  // HTTP User-Agent sampling rate (the paper stores 1 of every 4096
  // request headers).
  double ua_sample_rate = 1.0 / 4096.0;
};

}  // namespace ipscope::sim
