#include "stats/linreg.h"

namespace ipscope::stats {

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace ipscope::stats
