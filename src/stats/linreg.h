// Ordinary least-squares linear regression.
//
// Fig 1 fits a regression line to the monthly active-address counts up to
// 2014-01 and shows the post-2014 series departing from it — the paper's
// headline "stagnation" observation.
#pragma once

#include <span>

namespace ipscope::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double At(double x) const { return slope * x + intercept; }
};

// Fits y = slope * x + intercept by OLS. Requires x.size() == y.size() >= 2
// and non-constant x; returns a zero fit otherwise.
LinearFit FitLinear(std::span<const double> x, std::span<const double> y);

}  // namespace ipscope::stats
