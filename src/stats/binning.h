// Feature normalization and the paper's demographics binning (Section 7).
//
// The paper projects three per-/24 features onto a unified [0, 1] scale:
// spatio-temporal utilization is already in (0, 1]; traffic contribution and
// relative host count are log-transformed and divided by the maximum
// log-transformed value across all active blocks. The normalized triple is
// then binned into a 10x10x10 cube (Fig 11), or a 10x10 grid with the third
// feature as color (Fig 12).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ipscope::stats {

// log(1 + v) / log(1 + max) normalization; 0 maps to 0, max maps to 1.
// The +1 keeps zero-valued blocks meaningful (the paper's blocks all have
// at least one hit, but scan-only blocks may have zero samples).
double LogNormalize(double value, double max_value);

// Bin index in {0..bins-1} for a normalized value in [0, 1]; 1.0 falls into
// the last bin.
int BinOf(double normalized, int bins);

// A dense bins^3 cube of counts over three normalized features.
class FeatureCube {
 public:
  explicit FeatureCube(int bins = 10);

  void Add(double f0, double f1, double f2, std::uint64_t weight = 1);

  int bins() const { return bins_; }
  std::uint64_t count(int b0, int b1, int b2) const;
  std::uint64_t total() const { return total_; }

  // Marginal 2-D grid over features (0, 1): sum over the third axis.
  std::vector<std::uint64_t> Marginal01() const;

  // Weighted mean of the third feature's bin center per (b0, b1) cell;
  // returns -1 for empty cells. This is Fig 12's color channel.
  std::vector<double> MeanFeature2Per01() const;

 private:
  std::size_t Index(int b0, int b1, int b2) const;

  int bins_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace ipscope::stats
