#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ipscope::stats {

double QuantileSorted(std::span<const double> sorted, double q) {
  // NaN, not 0: an empty sample has no quantile, and 0.0 is a legitimate
  // value for every series this project computes (churn percentages, STU
  // deltas). Callers that want a sentinel must check for emptiness.
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::vector<double> Quantiles(std::vector<double> values,
                              std::span<const double> qs) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(QuantileSorted(values, q));
  return out;
}

double Median(std::vector<double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, 0.5);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse runs of equal values into their final (highest) CDF point.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double CdfAt(std::span<const double> sorted, double x) {
  if (sorted.empty()) return 0.0;
  auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace ipscope::stats
