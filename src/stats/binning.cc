#include "stats/binning.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ipscope::stats {

double LogNormalize(double value, double max_value) {
  if (value <= 0 || max_value <= 0) return 0.0;
  double v = std::log1p(value) / std::log1p(max_value);
  return std::clamp(v, 0.0, 1.0);
}

int BinOf(double normalized, int bins) {
  int b = static_cast<int>(normalized * bins);
  return std::clamp(b, 0, bins - 1);
}

FeatureCube::FeatureCube(int bins) : bins_(bins) {
  assert(bins > 0);
  cells_.assign(static_cast<std::size_t>(bins) * bins * bins, 0);
}

std::size_t FeatureCube::Index(int b0, int b1, int b2) const {
  return (static_cast<std::size_t>(b0) * bins_ + b1) * bins_ + b2;
}

void FeatureCube::Add(double f0, double f1, double f2, std::uint64_t weight) {
  cells_[Index(BinOf(f0, bins_), BinOf(f1, bins_), BinOf(f2, bins_))] +=
      weight;
  total_ += weight;
}

std::uint64_t FeatureCube::count(int b0, int b1, int b2) const {
  return cells_[Index(b0, b1, b2)];
}

std::vector<std::uint64_t> FeatureCube::Marginal01() const {
  std::vector<std::uint64_t> grid(static_cast<std::size_t>(bins_) * bins_, 0);
  for (int b0 = 0; b0 < bins_; ++b0) {
    for (int b1 = 0; b1 < bins_; ++b1) {
      std::uint64_t sum = 0;
      for (int b2 = 0; b2 < bins_; ++b2) sum += count(b0, b1, b2);
      grid[static_cast<std::size_t>(b0) * bins_ + b1] = sum;
    }
  }
  return grid;
}

std::vector<double> FeatureCube::MeanFeature2Per01() const {
  std::vector<double> grid(static_cast<std::size_t>(bins_) * bins_, -1.0);
  for (int b0 = 0; b0 < bins_; ++b0) {
    for (int b1 = 0; b1 < bins_; ++b1) {
      std::uint64_t sum = 0;
      double weighted = 0.0;
      for (int b2 = 0; b2 < bins_; ++b2) {
        std::uint64_t c = count(b0, b1, b2);
        sum += c;
        weighted += static_cast<double>(c) *
                    ((static_cast<double>(b2) + 0.5) / bins_);
      }
      if (sum > 0) {
        grid[static_cast<std::size_t>(b0) * bins_ + b1] =
            weighted / static_cast<double>(sum);
      }
    }
  }
  return grid;
}

}  // namespace ipscope::stats
