#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace ipscope::stats {

double Summary::stddev() const { return std::sqrt(variance()); }

std::vector<double> MovingAverage(std::span<const double> series, int w) {
  std::vector<double> out;
  if (w <= 0 || series.size() < static_cast<std::size_t>(w)) return out;
  out.reserve(series.size() - static_cast<std::size_t>(w) + 1);
  double sum = 0;
  for (int i = 0; i < w; ++i) sum += series[static_cast<std::size_t>(i)];
  out.push_back(sum / w);
  for (std::size_t i = static_cast<std::size_t>(w); i < series.size(); ++i) {
    sum += series[i] - series[i - static_cast<std::size_t>(w)];
    out.push_back(sum / w);
  }
  return out;
}

double Gini(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0) return 0.0;
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  Summary sx, sy;
  for (double v : x) sx.Add(v);
  for (double v : y) sy.Add(v);
  double cov = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  double denom = sx.stddev() * sy.stddev();
  return denom > 0 ? cov / denom : 0.0;
}

}  // namespace ipscope::stats
