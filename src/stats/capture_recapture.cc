#include "stats/capture_recapture.h"

#include <cmath>

namespace ipscope::stats {

CaptureRecaptureEstimate Chapman(std::uint64_t n1, std::uint64_t n2,
                                 std::uint64_t m) {
  CaptureRecaptureEstimate est;
  const double a = static_cast<double>(n1) + 1.0;
  const double b = static_cast<double>(n2) + 1.0;
  const double c = static_cast<double>(m) + 1.0;
  est.population = a * b / c - 1.0;
  // Seber's variance for the Chapman estimator.
  const double var = a * b * (a - c) * (b - c) / (c * c * (c + 1.0));
  est.std_error = var > 0 ? std::sqrt(var) : 0.0;
  return est;
}

CaptureRecaptureEstimate Schnabel(
    std::span<const std::uint64_t> catches,
    std::span<const std::uint64_t> recaptures,
    std::span<const std::uint64_t> marked_before) {
  CaptureRecaptureEstimate est;
  if (catches.size() != recaptures.size() ||
      catches.size() != marked_before.size() || catches.empty()) {
    return est;
  }
  double numer = 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < catches.size(); ++i) {
    numer += static_cast<double>(catches[i]) *
             static_cast<double>(marked_before[i]);
    denom += static_cast<double>(recaptures[i]);
  }
  // The +1 in the denominator is the standard bias correction mirroring
  // Chapman; it also keeps the estimator finite with zero recaptures.
  est.population = numer / (denom + 1.0);
  return est;
}

}  // namespace ipscope::stats
