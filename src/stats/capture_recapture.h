// Capture–recapture population estimation (the Zander et al. baseline).
//
// The paper (§3.1, §8) cites Zander, Andrew & Armitage (IMC 2014), who
// estimate the total active IPv4 population at 1.2 B by combining multiple
// partial observations with a capture/recapture model. We implement the
// two-sample Chapman estimator (the bias-corrected Lincoln–Petersen
// estimator) plus a multi-list Schnabel estimator, and use them to quantify
// how well sampled observation recovers the simulator's true population —
// the validation the original authors could not perform.
#pragma once

#include <cstdint>
#include <span>

namespace ipscope::stats {

struct CaptureRecaptureEstimate {
  double population = 0.0;  // point estimate of total population size
  double std_error = 0.0;   // large-sample standard error (Chapman only)
};

// Chapman estimator from two capture occasions:
//   n1 = marked on occasion 1, n2 = caught on occasion 2,
//   m  = caught on both (recaptures).
// N* = (n1+1)(n2+1)/(m+1) - 1. Requires m <= min(n1, n2).
CaptureRecaptureEstimate Chapman(std::uint64_t n1, std::uint64_t n2,
                                 std::uint64_t m);

// Schnabel estimator over k capture occasions. `catches[i]` is the number of
// individuals caught on occasion i; `recaptures[i]` the number of those that
// had been caught on any earlier occasion (recaptures[0] must be 0);
// `marked_before[i]` the number of distinct individuals seen before occasion
// i. N* = sum(catches[i] * marked_before[i]) / sum(recaptures[i]).
CaptureRecaptureEstimate Schnabel(std::span<const std::uint64_t> catches,
                                  std::span<const std::uint64_t> recaptures,
                                  std::span<const std::uint64_t> marked_before);

}  // namespace ipscope::stats
