// Streaming summary statistics (Welford) and simple series helpers.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ipscope::stats {

// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Centered moving average with window `w` (odd or even; even windows use the
// trailing convention: average of the last w values). Used for the trend
// line in Fig 9c.
std::vector<double> MovingAverage(std::span<const double> series, int w);

// Pearson correlation coefficient of two equal-length series.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Gini coefficient of a non-negative sample (0 = perfectly even, ->1 =
// concentrated in one element). Used to summarize traffic concentration
// across addresses (complementing Fig 9's top-decile share).
double Gini(std::vector<double> values);

}  // namespace ipscope::stats
