// Fixed-bin and logarithmic histograms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ipscope::stats {

// Histogram over [lo, hi) with `bins` equal-width bins. Values outside the
// range are clamped into the first/last bin (the paper's Fig 8c histogram
// includes its endpoints).
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x, std::uint64_t weight = 1);

  int bins() const { return static_cast<int>(counts_.size()); }
  std::uint64_t count(int bin) const {
    return counts_[static_cast<std::size_t>(bin)];
  }
  std::uint64_t total() const { return total_; }
  double BinLow(int bin) const;
  double BinHigh(int bin) const;
  double BinCenter(int bin) const;

  // Fraction of total mass in `bin` (0 if the histogram is empty).
  double Fraction(int bin) const;

  std::span<const std::uint64_t> counts() const { return counts_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Base-`base` logarithmic bin index of a positive count: bin k covers
// [base^k, base^(k+1)). Zero maps to bin -1. Used for Fig 10's log-log
// density grid.
int LogBin(double value, double base);

// A 2-D log-log density grid: counts of (x, y) points in log-spaced cells.
// Mirrors Fig 10 (samples vs unique User-Agent strings per /24).
class LogLogGrid {
 public:
  LogLogGrid(double base, int x_bins, int y_bins);

  void Add(double x, double y);

  int x_bins() const { return x_bins_; }
  int y_bins() const { return y_bins_; }
  std::uint64_t count(int xb, int yb) const;
  std::uint64_t total() const { return total_; }
  double CellLowX(int xb) const;
  double CellLowY(int yb) const;

 private:
  double base_;
  int x_bins_;
  int y_bins_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace ipscope::stats
