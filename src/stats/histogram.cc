#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ipscope::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  assert(bins > 0 && hi > lo);
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::Add(double x, std::uint64_t weight) {
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int bin = static_cast<int>(std::floor((x - lo_) / width));
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::BinLow(int bin) const {
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * bin;
}

double Histogram::BinHigh(int bin) const { return BinLow(bin + 1); }

double Histogram::BinCenter(int bin) const {
  return (BinLow(bin) + BinHigh(bin)) / 2.0;
}

double Histogram::Fraction(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

int LogBin(double value, double base) {
  if (value < 1.0) return -1;
  return static_cast<int>(std::floor(std::log(value) / std::log(base)));
}

LogLogGrid::LogLogGrid(double base, int x_bins, int y_bins)
    : base_(base), x_bins_(x_bins), y_bins_(y_bins) {
  assert(base > 1.0 && x_bins > 0 && y_bins > 0);
  cells_.assign(static_cast<std::size_t>(x_bins) *
                    static_cast<std::size_t>(y_bins),
                0);
}

void LogLogGrid::Add(double x, double y) {
  int xb = std::clamp(LogBin(x, base_), 0, x_bins_ - 1);
  int yb = std::clamp(LogBin(y, base_), 0, y_bins_ - 1);
  cells_[static_cast<std::size_t>(yb) * static_cast<std::size_t>(x_bins_) +
         static_cast<std::size_t>(xb)] += 1;
  ++total_;
}

std::uint64_t LogLogGrid::count(int xb, int yb) const {
  return cells_[static_cast<std::size_t>(yb) *
                    static_cast<std::size_t>(x_bins_) +
                static_cast<std::size_t>(xb)];
}

double LogLogGrid::CellLowX(int xb) const { return std::pow(base_, xb); }
double LogLogGrid::CellLowY(int yb) const { return std::pow(base_, yb); }

}  // namespace ipscope::stats
