// Exact quantiles over in-memory samples.
//
// The paper reports medians and 5/25/75/95-percentile bands (Fig 9a) and
// min/median/max across window pairs (Fig 4b). Quantiles use the standard
// linear-interpolation definition (type 7, the R/NumPy default).
#pragma once

#include <span>
#include <vector>

namespace ipscope::stats {

// Quantile q in [0,1] of `sorted` (must be ascending). An empty input has
// no quantile and returns NaN — 0.0 would be indistinguishable from a
// genuine zero quantile, which several analyses produce legitimately.
double QuantileSorted(std::span<const double> sorted, double q);

// Convenience: copies, sorts, and evaluates several quantiles at once.
// Each entry is NaN when `values` is empty.
std::vector<double> Quantiles(std::vector<double> values,
                              std::span<const double> qs);

// Median convenience wrapper (NaN for an empty input, like QuantileSorted).
double Median(std::vector<double> values);

// Empirical CDF evaluated at each sample: returns sorted (x, F(x)) pairs
// where F is the fraction of samples <= x. Used to print the paper's CDF
// figures (5a, 8a, 8b).
struct CdfPoint {
  double x;
  double f;
};
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

// Fraction of samples <= x in an ascending sorted vector.
double CdfAt(std::span<const double> sorted, double x);

}  // namespace ipscope::stats
