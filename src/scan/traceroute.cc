#include "scan/traceroute.h"

#include <algorithm>

#include "rng/rng.h"
#include "sim/policy.h"

namespace ipscope::scan {

namespace {
constexpr std::uint64_t kTagHop = 0x7201;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

net::Ipv4Set TracerouteCampaign::RouterAddresses(
    std::int32_t month_start_day) const {
  std::vector<std::uint32_t> values;
  for (const sim::BlockPlan& plan : world_.blocks()) {
    const sim::PolicyParams& pp = plan.ParamsOn(month_start_day);
    double host_p = 0.0;
    switch (pp.kind) {
      case sim::PolicyKind::kRouterInfra:
        host_p = 0.80;
        break;
      case sim::PolicyKind::kServerFarm:
        host_p = 0.08;  // dual-role boxes seen as intermediate hops
        break;
      default:
        continue;
    }
    std::uint32_t base = plan.block.network().value();
    for (int host = 0; host < std::min<int>(pp.pool_size, 256); ++host) {
      std::uint64_t h = rng::Substream(plan.block_seed, kTagHop, host);
      if (HashUnit(h) < host_p) {
        values.push_back(base + static_cast<std::uint32_t>(host));
      }
    }
  }
  return net::Ipv4Set::FromValues(std::move(values));
}

}  // namespace ipscope::scan
