// Traceroute campaigns (the CAIDA Ark substitute, paper §3.3): router
// interface addresses are those that appeared on any traceroute, i.e.
// answered with ICMP TTL Exceeded.
#pragma once

#include <cstdint>

#include "netbase/ip_set.h"
#include "sim/world.h"

namespace ipscope::scan {

class TracerouteCampaign {
 public:
  explicit TracerouteCampaign(const sim::World& world) : world_(world) {}

  // Router interface addresses observed during a month of probing.
  net::Ipv4Set RouterAddresses(std::int32_t month_start_day) const;

 private:
  const sim::World& world_;
};

}  // namespace ipscope::scan
