#include "scan/icmp.h"

#include <algorithm>

#include "geo/country.h"
#include "rng/rng.h"
#include "sim/policy.h"

namespace ipscope::scan {

namespace {

constexpr std::uint64_t kTagBlockOpen = 0x1c01;
constexpr std::uint64_t kTagHostResponder = 0x1c02;
constexpr std::uint64_t kTagOnline = 0x1c03;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

IcmpScanner::IcmpScanner(const sim::World& world) : world_(world) {
  index_.resize(world.blocks().size());
  for (std::uint32_t i = 0; i < index_.size(); ++i) index_[i] = i;
  std::sort(index_.begin(), index_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return net::BlockKeyOf(world.blocks()[a].block) <
                     net::BlockKeyOf(world.blocks()[b].block);
            });
}

const sim::BlockPlan* IcmpScanner::FindPlan(net::BlockKey key) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [&](std::uint32_t i, net::BlockKey k) {
        return net::BlockKeyOf(world_.blocks()[i].block) < k;
      });
  if (it == index_.end() ||
      net::BlockKeyOf(world_.blocks()[*it].block) != key) {
    return nullptr;
  }
  return &world_.blocks()[*it];
}

bool IcmpScanner::Probe(net::IPv4Addr addr, std::int32_t day) const {
  const sim::BlockPlan* plan = FindPlan(net::BlockKeyOf(addr));
  if (plan == nullptr) return false;
  // Mirror Scan()'s activity-window gating exactly.
  if ((day < plan->active_from || day >= plan->active_until) &&
      !sim::IsInfraPolicy(plan->base.kind)) {
    return false;
  }
  std::vector<std::uint32_t> responders;
  ScanBlockInto(*plan, day, responders);
  return std::find(responders.begin(), responders.end(), addr.value()) !=
         responders.end();
}

void IcmpScanner::ScanBlockInto(const sim::BlockPlan& plan, std::int32_t day,
                                std::vector<std::uint32_t>& out) const {
  const sim::PolicyParams& pp = plan.ParamsOn(day);
  const std::uint32_t base = plan.block.network().value();
  const auto countries = geo::Countries();
  const double country_rate =
      plan.country >= 0
          ? countries[static_cast<std::size_t>(plan.country)].icmp_response_rate
          : 0.5;

  if (sim::IsInfraPolicy(pp.kind)) {
    double host_p;
    switch (pp.kind) {
      case sim::PolicyKind::kServerFarm:
        host_p = 0.90;
        break;
      case sim::PolicyKind::kRouterInfra:
        host_p = 0.85;
        break;
      default:  // middlebox / tarpit: the whole range answers
        host_p = 0.95;
        break;
    }
    for (int host = 0; host < std::min<int>(pp.pool_size, 256); ++host) {
      std::uint64_t h =
          rng::Substream(plan.block_seed, kTagHostResponder, host);
      if (HashUnit(h) < host_p) {
        out.push_back(base + static_cast<std::uint32_t>(host));
      }
    }
    return;
  }

  if (!sim::IsClientPolicy(pp.kind) &&
      pp.kind != sim::PolicyKind::kCrawlerBots) {
    return;  // unused space is silent
  }

  // Block-level ICMP permissiveness: one persistent draw per block.
  double open_rate = std::min(1.0, country_rate * 1.1);
  if (HashUnit(rng::Substream(plan.block_seed, kTagBlockOpen)) >= open_rate) {
    return;
  }

  // Client activity around the scan: generate the +-3-day neighbourhood.
  sim::StepSpec spec;
  spec.start_day = day - 3;
  spec.step_days = 1;
  spec.steps = 7;
  activity::DayBits today{};
  activity::DayBits nearby{};
  for (int s = 0; s < 7; ++s) {
    activity::DayBits bits;
    sim::GenerateStep(plan, spec, s, bits, nullptr);
    nearby = activity::OrBits(nearby, bits);
    if (s == 3) today = bits;
  }

  for (int host = 0; host < 256; ++host) {
    bool active_today = activity::TestBit(today, host);
    bool active_nearby = activity::TestBit(nearby, host);
    if (!active_nearby) continue;
    std::uint64_t responder =
        rng::Substream(plan.block_seed, kTagHostResponder, host);
    if (HashUnit(responder) >= 0.92) continue;  // CPE drops ICMP
    double online_p = active_today ? 0.95 : 0.5;
    std::uint64_t online =
        rng::Substream(plan.block_seed, kTagOnline, host, day);
    if (HashUnit(online) < online_p) {
      out.push_back(base + static_cast<std::uint32_t>(host));
    }
  }
}

net::Ipv4Set IcmpScanner::Scan(std::int32_t day) const {
  std::vector<std::uint32_t> values;
  for (const sim::BlockPlan& plan : world_.blocks()) {
    std::int32_t mid = day;
    if (mid < plan.active_from || mid >= plan.active_until) {
      // Deactivated client blocks stop answering; infrastructure blocks are
      // not subject to the client activity window.
      if (!sim::IsInfraPolicy(plan.base.kind)) continue;
    }
    ScanBlockInto(plan, day, values);
  }
  return net::Ipv4Set::FromValues(std::move(values));
}

net::Ipv4Set IcmpScanner::ScanMonth(std::int32_t month_start_day,
                                    int month_days, int num_scans) const {
  std::vector<std::uint32_t> values;
  for (int i = 0; i < num_scans; ++i) {
    std::int32_t day =
        month_start_day + (i * month_days) / std::max(1, num_scans);
    for (const sim::BlockPlan& plan : world_.blocks()) {
      if (day < plan.active_from || day >= plan.active_until) {
        if (!sim::IsInfraPolicy(plan.base.kind)) continue;
      }
      ScanBlockInto(plan, day, values);
    }
  }
  return net::Ipv4Set::FromValues(std::move(values));
}

}  // namespace ipscope::scan
