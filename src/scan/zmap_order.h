// ZMap-style address-space iteration order.
//
// Internet-wide scanners (Durumeric et al., cited §3.1) probe the address
// space in a pseudorandom permutation so probe load never concentrates on
// one network. We implement the permutation as a seeded 4-round Feistel
// network over the 32-bit space — a bijection by construction, with O(1)
// forward and inverse evaluation and no number-theoretic preconditions.
#pragma once

#include <cstdint>

#include "netbase/ipv4.h"

namespace ipscope::scan {

class AddressPermutation {
 public:
  explicit AddressPermutation(std::uint64_t seed);

  // The address at a position of the scan order. Bijective over the full
  // 2^32 index space.
  net::IPv4Addr AddressAt(std::uint32_t index) const;

  // Inverse: the scan position of an address.
  std::uint32_t IndexOf(net::IPv4Addr addr) const;

 private:
  std::uint32_t RoundKey(int round) const { return keys_[round]; }

  std::uint32_t keys_[4];
};

// Convenience: visits `count` scan targets starting at scan position
// `first_index` in permutation order: fn(IPv4Addr).
template <typename Fn>
void ForScanChunk(const AddressPermutation& perm, std::uint32_t first_index,
                  std::uint32_t count, Fn&& fn) {
  for (std::uint32_t i = 0; i < count; ++i) {
    fn(perm.AddressAt(first_index + i));
  }
}

}  // namespace ipscope::scan
