// Trinocular-style adaptive /24 availability monitoring (Quan, Heidemann &
// Pradkin, SIGCOMM 2013 — the paper's ref [29] for "Internet reliability").
//
// The idea: instead of scanning all 256 addresses of every block, maintain
// a Bayesian belief B = P(block reachable) per /24 and probe only as many
// addresses per round as needed to push the belief past a decision
// threshold. The model:
//   * E(b): the block's ever-responsive addresses (from a seed survey);
//   * A(b): the expected per-probe response rate of E(b) while the block
//     is up (estimated from the same survey);
//   * a probe response updates B with likelihood A(b) if up vs epsilon if
//     down; a timeout updates with 1-A(b) vs 1-epsilon.
// Each round ends when B crosses the up/down threshold or the probe budget
// is exhausted.
//
// We run the monitor against the simulated ICMP plane and score it against
// ground-truth block deactivations — coverage the original system could
// only approximate with control-plane heuristics.
#pragma once

#include <cstdint>
#include <vector>

#include "scan/icmp.h"
#include "sim/world.h"

namespace ipscope::scan {

struct TrinocularConfig {
  // Likelihood of a (spurious) response while the block is down.
  double response_if_down = 0.01;
  // Decision thresholds on the belief.
  double belief_up = 0.9;
  double belief_down = 0.1;
  // Probe budget per block per round. Probing stops early at the first
  // response (strong up evidence).
  int max_probes_per_round = 5;
  // Probability that an up block has a "dark day" — no member answers even
  // many probes (weekend dormancy, occupant churn). Probe outcomes within
  // one day are correlated through this state, so a day contributes one
  // aggregate observation, with this mixture bounding its down-evidence.
  double dark_day_probability = 0.25;
  // Seed survey used to learn E(b) and A(b).
  std::int32_t survey_start_day = 180;
  int survey_scans = 8;
  int survey_days = 28;
  // Belief relaxation toward 0.5 between rounds (state can change).
  double drift = 0.05;
  // Coverage gates, mirroring the original system's restriction to blocks
  // it can track reliably: enough ever-responsive addresses and a high
  // enough per-probe response rate. Sparse static blocks whose few tracked
  // addresses churn away after the survey otherwise turn into false
  // outages.
  int min_tracked_addresses = 4;
  double min_response_rate = 0.3;
  // EWMA weight for on-line re-estimation of A(b) from probe outcomes
  // while the block is believed up. Without it the survey-era estimate
  // goes stale as subscribers churn, and over-confident timeout evidence
  // manufactures false outages.
  double response_rate_ewma = 0.10;
};

enum class BlockState : std::int8_t { kDown = 0, kUp = 1, kUnknown = -1 };

struct BlockTimeline {
  net::BlockKey key = 0;
  double response_rate = 0.0;          // learned A(b)
  int tracked_addresses = 0;           // |E(b)|
  std::vector<BlockState> state;       // one entry per monitored day
  std::vector<std::uint8_t> probes;    // probes spent per day
};

struct TrinocularResult {
  std::int32_t first_day = 0;
  int days = 0;
  std::vector<BlockTimeline> timelines;  // ascending key
  std::uint64_t total_probes = 0;

  double MeanProbesPerBlockDay() const;
};

class TrinocularMonitor {
 public:
  TrinocularMonitor(const sim::World& world,
                    TrinocularConfig config = TrinocularConfig{});

  // Blocks eligible for monitoring (non-empty E(b)).
  std::size_t covered_blocks() const { return blocks_.size(); }

  // Runs daily monitoring rounds over [first_day, last_day).
  TrinocularResult Monitor(std::int32_t first_day, std::int32_t last_day);

 private:
  struct Tracked {
    net::BlockKey key;
    std::vector<net::IPv4Addr> responsive;  // E(b)
    double response_rate;                   // A(b)
    double belief = 0.5;
  };

  const sim::World& world_;
  IcmpScanner scanner_;
  TrinocularConfig config_;
  std::vector<Tracked> blocks_;
};

}  // namespace ipscope::scan
