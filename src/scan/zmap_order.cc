#include "scan/zmap_order.h"

#include "rng/rng.h"

namespace ipscope::scan {

namespace {

// Round function: mixes a 16-bit half with the round key via SplitMix.
std::uint16_t Mix(std::uint16_t half, std::uint32_t key) {
  std::uint64_t state = (static_cast<std::uint64_t>(key) << 16) | half;
  return static_cast<std::uint16_t>(rng::SplitMix64Next(state));
}

}  // namespace

AddressPermutation::AddressPermutation(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& key : keys_) {
    key = static_cast<std::uint32_t>(rng::SplitMix64Next(state));
  }
}

net::IPv4Addr AddressPermutation::AddressAt(std::uint32_t index) const {
  std::uint16_t left = static_cast<std::uint16_t>(index >> 16);
  std::uint16_t right = static_cast<std::uint16_t>(index);
  for (int round = 0; round < 4; ++round) {
    std::uint16_t next_left = right;
    right = static_cast<std::uint16_t>(left ^ Mix(right, RoundKey(round)));
    left = next_left;
  }
  return net::IPv4Addr{(static_cast<std::uint32_t>(left) << 16) | right};
}

std::uint32_t AddressPermutation::IndexOf(net::IPv4Addr addr) const {
  std::uint16_t left = static_cast<std::uint16_t>(addr.value() >> 16);
  std::uint16_t right = static_cast<std::uint16_t>(addr.value());
  for (int round = 3; round >= 0; --round) {
    std::uint16_t prev_right = left;
    left = static_cast<std::uint16_t>(
        right ^ Mix(prev_right, RoundKey(round)));
    right = prev_right;
  }
  return (static_cast<std::uint32_t>(left) << 16) | right;
}

}  // namespace ipscope::scan
