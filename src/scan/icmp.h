// ICMP scan campaigns (the ZMap substitute, paper §3.2–3.4).
//
// Response model, mirroring the paper's observations about what answers
// ICMP echo:
//  * A client address answers only if (a) its block's gateway/firewall
//    policy permits ICMP at all — a per-block Bernoulli draw with the
//    country's ICMP response rate (CN ~0.8, JP ~0.25, Fig 3b) — and (b) the
//    individual CPE answers (persistent per-host property, ~0.92), and (c)
//    a device is online around scan time: certainly if the address was
//    CDN-active that day, with reduced probability if active within +-3
//    days, never otherwise. NAT'd hosts that never answer are exactly the
//    paper's ">40% of addresses CDN-only" population.
//  * Infrastructure (servers, routers, middleboxes/tarpits) answers with
//    high, activity-independent probability — the "ICMP only" population.
#pragma once

#include <cstdint>

#include "netbase/ip_set.h"
#include "sim/world.h"

namespace ipscope::scan {

class IcmpScanner {
 public:
  explicit IcmpScanner(const sim::World& world);

  // One full-address-space scan on an absolute day of year.
  net::Ipv4Set Scan(std::int32_t day) const;

  // Union of `num_scans` scans spread evenly over
  // [month_start_day, month_start_day + month_days) — the paper compares
  // one month of CDN logs against 8 ZMap snapshots (October 2015).
  net::Ipv4Set ScanMonth(std::int32_t month_start_day, int month_days = 28,
                         int num_scans = 8) const;

  // Single targeted probe: does `addr` answer an ICMP echo on `day`?
  // Consistent with Scan(day): Probe(a, d) is true iff a is in Scan(d).
  // Used by adaptive probers (scan/trinocular.h).
  bool Probe(net::IPv4Addr addr, std::int32_t day) const;

 private:
  void ScanBlockInto(const sim::BlockPlan& plan, std::int32_t day,
                     std::vector<std::uint32_t>& out) const;
  const sim::BlockPlan* FindPlan(net::BlockKey key) const;

  const sim::World& world_;
  std::vector<std::uint32_t> index_;  // block indices sorted by key
};

}  // namespace ipscope::scan
