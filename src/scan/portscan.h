// Service port scans (paper §3.3): the ZMap application-layer scans used to
// classify ICMP-only addresses as servers. An address counts as a server if
// it answered connection requests on HTTP(S), SMTP, IMAP(S) or POP3(S).
#pragma once

#include <cstdint>

#include "netbase/ip_set.h"
#include "sim/world.h"

namespace ipscope::scan {

class PortScanner {
 public:
  explicit PortScanner(const sim::World& world) : world_(world) {}

  // Addresses answering on at least one service port around `day`.
  net::Ipv4Set ScanServices(std::int32_t day) const;

 private:
  const sim::World& world_;
};

}  // namespace ipscope::scan
