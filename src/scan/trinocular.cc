#include "scan/trinocular.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "rng/rng.h"

namespace ipscope::scan {

double TrinocularResult::MeanProbesPerBlockDay() const {
  if (timelines.empty() || days == 0) return 0.0;
  return static_cast<double>(total_probes) /
         (static_cast<double>(timelines.size()) * days);
}

TrinocularMonitor::TrinocularMonitor(const sim::World& world,
                                     TrinocularConfig config)
    : world_(world), scanner_(world), config_(config) {
  // Seed survey: several full scans establish E(b) (who ever answers) and
  // A(b) (how reliably members answer while the block is up).
  std::unordered_map<net::BlockKey, std::unordered_map<std::uint32_t, int>>
      response_counts;
  for (int s = 0; s < config_.survey_scans; ++s) {
    std::int32_t day = config_.survey_start_day +
                       (s * config_.survey_days) /
                           std::max(1, config_.survey_scans);
    net::Ipv4Set scan = scanner_.Scan(day);
    scan.ForEach([&](net::IPv4Addr addr) {
      ++response_counts[net::BlockKeyOf(addr)][addr.value()];
    });
  }
  for (auto& [key, counts] : response_counts) {
    Tracked tracked;
    tracked.key = key;
    // Track only *stable* responders — addresses that answered at least
    // half of the survey scans. Addresses that answered once because a
    // rotating pool's band happened to pass over them are useless probe
    // targets and, left in E(b), manufacture false outages.
    const int min_responses = std::max(1, config_.survey_scans / 2);
    std::uint64_t responses = 0;
    for (const auto& [addr, n] : counts) {
      if (n < min_responses) continue;
      tracked.responsive.push_back(net::IPv4Addr{addr});
      responses += static_cast<std::uint64_t>(n);
    }
    if (tracked.responsive.empty()) continue;
    std::sort(tracked.responsive.begin(), tracked.responsive.end());
    tracked.response_rate =
        static_cast<double>(responses) /
        (static_cast<double>(tracked.responsive.size()) *
         config_.survey_scans);
    // Coverage gates: blocks the monitor cannot track reliably are
    // excluded rather than misreported.
    if (static_cast<int>(tracked.responsive.size()) <
            config_.min_tracked_addresses ||
        tracked.response_rate < config_.min_response_rate) {
      continue;
    }
    // Clamp away from the boundaries so likelihood ratios stay finite and
    // a single probe can never fully decide the belief.
    tracked.response_rate = std::clamp(tracked.response_rate, 0.10, 0.99);
    blocks_.push_back(std::move(tracked));
  }
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Tracked& a, const Tracked& b) { return a.key < b.key; });
}

TrinocularResult TrinocularMonitor::Monitor(std::int32_t first_day,
                                            std::int32_t last_day) {
  TrinocularResult result;
  result.first_day = first_day;
  result.days = static_cast<int>(last_day - first_day);
  result.timelines.reserve(blocks_.size());
  for (Tracked& tracked : blocks_) {
    BlockTimeline timeline;
    timeline.key = tracked.key;
    timeline.response_rate = tracked.response_rate;
    timeline.tracked_addresses = static_cast<int>(tracked.responsive.size());
    timeline.state.reserve(static_cast<std::size_t>(result.days));
    timeline.probes.reserve(static_cast<std::size_t>(result.days));
    tracked.belief = 0.5;

    for (std::int32_t day = first_day; day < last_day; ++day) {
      // Relax toward uncertainty: yesterday's state can have changed.
      tracked.belief =
          tracked.belief * (1.0 - config_.drift) + 0.5 * config_.drift;

      // Probe only when the belief is undecided; stop at the first
      // response. The whole day then contributes ONE aggregate observation
      // ("any of m probes answered?"): outcomes within a day are correlated
      // through the block's dark-day state, so treating every timeout as
      // independent evidence would manufacture false outages.
      int probes = 0;
      int hits = 0;
      if (tracked.belief < config_.belief_up &&
          tracked.belief > config_.belief_down) {
        while (hits == 0 && probes < config_.max_probes_per_round) {
          std::uint64_t pick = rng::Substream(
              world_.config().seed, 0x7217, tracked.key, day, probes);
          const net::IPv4Addr target = tracked.responsive[
              static_cast<std::size_t>(pick % tracked.responsive.size())];
          hits += scanner_.Probe(target, day) ? 1 : 0;
          ++probes;
        }
        const double a = tracked.response_rate;
        const double e = config_.response_if_down;
        const double q = config_.dark_day_probability;
        const double m = static_cast<double>(probes);
        // P(no response to m probes | up) mixes the bright-day miss
        // probability with the dark-day floor; | down it is ~certain.
        double none_up = (1.0 - q) * std::pow(1.0 - a, m) + q;
        double none_down = std::pow(1.0 - e, m);
        double like_up = hits > 0 ? 1.0 - none_up : none_up;
        double like_down = hits > 0 ? 1.0 - none_down : none_down;
        double numer = like_up * tracked.belief;
        tracked.belief =
            numer / (numer + like_down * (1.0 - tracked.belief));
        tracked.belief = std::clamp(tracked.belief, 1e-6, 1.0 - 1e-6);
      }
      // Re-calibrate A(b) from this round's outcomes, but only while the
      // block is believed up: probing a down block says nothing about how
      // reliably its members answer when it is up.
      if (probes > 0 && tracked.belief > 0.5) {
        double observed = static_cast<double>(hits) / probes;
        tracked.response_rate = std::clamp(
            (1.0 - config_.response_rate_ewma) * tracked.response_rate +
                config_.response_rate_ewma * observed,
            0.10, 0.99);
      }
      result.total_probes += static_cast<std::uint64_t>(probes);
      timeline.probes.push_back(static_cast<std::uint8_t>(probes));
      if (tracked.belief >= config_.belief_up) {
        timeline.state.push_back(BlockState::kUp);
      } else if (tracked.belief <= config_.belief_down) {
        timeline.state.push_back(BlockState::kDown);
      } else {
        timeline.state.push_back(BlockState::kUnknown);
      }
    }
    result.timelines.push_back(std::move(timeline));
  }
  return result;
}

}  // namespace ipscope::scan
