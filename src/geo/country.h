// Country and RIR metadata for the simulated Internet.
//
// The paper groups addresses by Regional Internet Registry (Figs 3a, 12) and
// by country (Fig 3b), annotates countries with ITU broadband/cellular
// subscriber ranks, and observes that ICMP responsiveness varies sharply by
// country (~80% in CN vs ~25% in JP). The static table below encodes a
// synthetic-but-shaped version of those country-level facts; the simulator
// scales subscriber counts down to world size while preserving ranks.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace ipscope::geo {

enum class Rir : std::uint8_t { kArin, kRipe, kApnic, kLacnic, kAfrinic };
inline constexpr int kRirCount = 5;

std::string_view RirName(Rir rir);

struct CountryInfo {
  std::string_view code;  // ISO 3166-1 alpha-2
  Rir rir;
  // Relative share of the world's allocated IPv4 space held by this country
  // (arbitrary units; normalized by the registry).
  double address_share;
  // Millions of subscribers (synthetic, ITU-shaped). Used for Fig 3b ranks.
  double broadband_subs_m;
  double cellular_subs_m;
  // Fraction of active client addresses that answer ICMP echo (firewall/NAT
  // policy aggregate). The paper reports ~0.8 for CN and ~0.25 for JP.
  double icmp_response_rate;
  // Fraction of this country's client address space behind carrier-grade
  // NAT gateways (drives the high-UA-diversity corner of Fig 10).
  double cgn_share;
  // Representative UTC offset in hours (drives the phase of the diurnal
  // request curve in raw logs; cf. "When the Internet Sleeps", ref [30]).
  int utc_offset_hours;
};

// The synthetic country table. Shares and subscriber counts are shaped to
// reproduce the paper's Fig 3 orderings: US/CN/JP/BR/DE lead in visible
// addresses; broadband ranks track visible-address ranks much more closely
// than cellular ranks do.
std::span<const CountryInfo> Countries();

// Index into Countries() for a code, or -1 if absent.
int CountryIndex(std::string_view code);

}  // namespace ipscope::geo
