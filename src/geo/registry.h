// Synthetic RIR delegation registry.
//
// Stands in for the NRO extended allocation files the paper uses (§3.4):
// every address maps to a (RIR, country) pair. Each RIR owns a fixed /3
// region of the 32-bit space; countries receive contiguous sub-regions of
// their RIR's region, sized by their address share. /24 blocks are carved
// from country regions on demand, with deterministic pseudo-random spacing
// so that allocated space is interleaved with unallocated holes (as in the
// real Internet).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/country.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace ipscope::geo {

class Registry {
 public:
  explicit Registry(std::uint64_t seed);

  // Carves the next /24 block for `country_index`, skipping a pseudo-random
  // number of /24s first (so allocations leave holes). Returns nullopt when
  // the country region is exhausted (should not happen at sane world sizes).
  std::optional<net::Prefix> AllocateBlock(int country_index);

  // Carves `count` /24 blocks at consecutive addresses (one ISP aggregate).
  // Returns an empty vector if the region cannot fit them.
  std::vector<net::Prefix> AllocateContiguous(int country_index, int count);

  // Reverse lookups. Addresses outside any country region map to nullopt.
  std::optional<Rir> RirOf(net::IPv4Addr addr) const;
  std::optional<int> CountryOf(net::IPv4Addr addr) const;

  // The [first, last] /24-key range reserved for a country.
  struct Region {
    std::uint32_t first_block;  // BlockKey
    std::uint32_t last_block;   // BlockKey, inclusive
  };
  Region CountryRegion(int country_index) const {
    return regions_[static_cast<std::size_t>(country_index)];
  }

 private:
  std::vector<Region> regions_;   // by country index
  std::vector<std::uint32_t> cursors_;  // next BlockKey per country
  std::uint64_t seed_;
};

}  // namespace ipscope::geo
