#include "geo/country.h"

namespace ipscope::geo {

std::string_view RirName(Rir rir) {
  switch (rir) {
    case Rir::kArin:
      return "ARIN";
    case Rir::kRipe:
      return "RIPE";
    case Rir::kApnic:
      return "APNIC";
    case Rir::kLacnic:
      return "LACNIC";
    case Rir::kAfrinic:
      return "AFRINIC";
  }
  return "?";
}

namespace {

// Shares/subscribers are synthetic but ordered to match the paper's Fig 3:
// broadband ranks (CN 1, US 2, JP 3, DE 4, FR 5, RU 6, BR 7, GB 8, KR 9,
// IN 10, IT 12) track visible-address ranks; cellular ranks diverge.
constexpr CountryInfo kCountries[] = {
    //  code  rir             share  bb(M)  cell(M) icmp  cgn  utc
    {"US", Rir::kArin, 40.0, 100.0, 380.0, 0.45, 0.08, -6},
    {"CA", Rir::kArin, 4.0, 11.5, 32.0, 0.50, 0.08, -5},
    {"MX", Rir::kLacnic, 3.0, 17.0, 105.0, 0.45, 0.20, -6},
    {"BR", Rir::kLacnic, 6.0, 25.0, 280.0, 0.50, 0.20, -3},
    {"AR", Rir::kLacnic, 2.0, 8.0, 60.0, 0.50, 0.20, -3},
    {"CO", Rir::kLacnic, 1.5, 6.0, 55.0, 0.50, 0.25, -5},
    {"CL", Rir::kLacnic, 1.0, 3.5, 25.0, 0.50, 0.20, -4},
    {"DE", Rir::kRipe, 9.0, 30.0, 100.0, 0.50, 0.05, 1},
    {"GB", Rir::kRipe, 8.0, 24.0, 80.0, 0.50, 0.08, 0},
    {"FR", Rir::kRipe, 7.5, 26.5, 70.0, 0.55, 0.05, 1},
    {"RU", Rir::kRipe, 6.0, 26.0, 240.0, 0.60, 0.15, 3},
    {"IT", Rir::kRipe, 5.0, 13.5, 90.0, 0.50, 0.10, 1},
    {"ES", Rir::kRipe, 4.0, 13.0, 52.0, 0.50, 0.10, 1},
    {"NL", Rir::kRipe, 3.5, 7.2, 22.0, 0.45, 0.05, 1},
    {"PL", Rir::kRipe, 2.5, 7.5, 56.0, 0.55, 0.12, 1},
    {"TR", Rir::kRipe, 2.0, 12.0, 73.0, 0.60, 0.20, 3},
    {"SE", Rir::kRipe, 2.0, 4.0, 13.0, 0.40, 0.05, 1},
    {"CN", Rir::kApnic, 20.0, 200.0, 1300.0, 0.80, 0.45, 8},
    {"JP", Rir::kApnic, 12.0, 39.0, 160.0, 0.25, 0.15, 9},
    {"KR", Rir::kApnic, 7.0, 20.0, 57.0, 0.55, 0.15, 9},
    {"IN", Rir::kApnic, 5.0, 18.0, 1000.0, 0.55, 0.50, 5},
    {"AU", Rir::kApnic, 3.0, 7.8, 27.0, 0.40, 0.10, 10},
    {"ID", Rir::kApnic, 2.5, 5.0, 340.0, 0.60, 0.45, 7},
    {"VN", Rir::kApnic, 2.0, 8.0, 130.0, 0.60, 0.40, 7},
    {"TW", Rir::kApnic, 2.5, 5.8, 29.0, 0.45, 0.10, 8},
    {"PH", Rir::kApnic, 1.0, 3.0, 115.0, 0.55, 0.45, 8},
    // AFRINIC ICMP responsiveness is lowest — the paper's Fig 3a shows the
    // CDN lifting visible addresses there by >150%.
    {"ZA", Rir::kAfrinic, 2.0, 1.5, 85.0, 0.32, 0.30, 2},
    {"EG", Rir::kAfrinic, 1.2, 4.5, 95.0, 0.35, 0.35, 2},
    {"NG", Rir::kAfrinic, 0.8, 0.5, 150.0, 0.28, 0.50, 1},
    {"KE", Rir::kAfrinic, 0.5, 0.3, 38.0, 0.30, 0.45, 3},
    {"MA", Rir::kAfrinic, 0.6, 1.2, 43.0, 0.33, 0.35, 0},
};

}  // namespace

std::span<const CountryInfo> Countries() { return kCountries; }

int CountryIndex(std::string_view code) {
  for (std::size_t i = 0; i < std::size(kCountries); ++i) {
    if (kCountries[i].code == code) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ipscope::geo
