#include "geo/registry.h"

#include <algorithm>
#include <cassert>

#include "rng/rng.h"

namespace ipscope::geo {

namespace {

// Each RIR owns one /3-sized region offset by a /5 so no simulated address
// falls in 0.0.0.0/8: ARIN from 8.0.0.0, RIPE from 40.0.0.0, APNIC from
// 72.0.0.0, LACNIC from 104.0.0.0, AFRINIC from 136.0.0.0. In BlockKey
// space (top 24 bits) a /3 spans 2^21 blocks.
constexpr std::uint32_t kBlocksPerRir = 1u << 21;
constexpr std::uint32_t kRegionOffset = 1u << 19;  // 8.0.0.0 in key space

std::uint32_t RirBaseBlock(Rir rir) {
  return kRegionOffset + static_cast<std::uint32_t>(rir) * kBlocksPerRir;
}

}  // namespace

Registry::Registry(std::uint64_t seed) : seed_(seed) {
  auto countries = Countries();
  regions_.resize(countries.size());
  cursors_.resize(countries.size());

  double share_sum[kRirCount] = {};
  for (const CountryInfo& c : countries) {
    share_sum[static_cast<int>(c.rir)] += c.address_share;
  }

  std::uint32_t cursor[kRirCount];
  for (int r = 0; r < kRirCount; ++r) {
    cursor[r] = RirBaseBlock(static_cast<Rir>(r));
  }
  for (std::size_t i = 0; i < countries.size(); ++i) {
    const CountryInfo& c = countries[i];
    int r = static_cast<int>(c.rir);
    auto blocks = static_cast<std::uint32_t>(
        c.address_share / share_sum[r] * kBlocksPerRir);
    blocks = std::max(blocks, 16u);
    regions_[i] = Region{cursor[r], cursor[r] + blocks - 1};
    cursors_[i] = cursor[r];
    cursor[r] += blocks;
    assert(cursor[r] <= RirBaseBlock(static_cast<Rir>(r)) + kBlocksPerRir);
  }
}

std::optional<net::Prefix> Registry::AllocateBlock(int country_index) {
  auto i = static_cast<std::size_t>(country_index);
  const Region& region = regions_[i];
  // Skip 0..7 blocks to leave unallocated holes; the skip is a deterministic
  // function of the allocation position so the registry layout is stable.
  rng::Xoshiro256 g{rng::Substream(seed_, 0x9e0u, country_index,
                                   cursors_[i])};
  std::uint32_t skip = g.NextBounded(8);
  std::uint32_t key = cursors_[i] + skip;
  if (key > region.last_block) return std::nullopt;
  cursors_[i] = key + 1;
  return net::BlockFromKey(key);
}

std::vector<net::Prefix> Registry::AllocateContiguous(int country_index,
                                                      int count) {
  auto i = static_cast<std::size_t>(country_index);
  const Region& region = regions_[i];
  rng::Xoshiro256 g{rng::Substream(seed_, 0x9e1u, country_index,
                                   cursors_[i])};
  std::uint32_t skip = g.NextBounded(8);
  std::uint32_t first = cursors_[i] + skip;
  std::uint64_t last = std::uint64_t{first} + static_cast<std::uint32_t>(count) - 1;
  if (count <= 0 || last > region.last_block) return {};
  std::vector<net::Prefix> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint32_t k = first; k <= static_cast<std::uint32_t>(last); ++k) {
    out.push_back(net::BlockFromKey(k));
  }
  cursors_[i] = first + static_cast<std::uint32_t>(count);
  return out;
}

std::optional<Rir> Registry::RirOf(net::IPv4Addr addr) const {
  auto country = CountryOf(addr);
  if (!country) return std::nullopt;
  return Countries()[static_cast<std::size_t>(*country)].rir;
}

std::optional<int> Registry::CountryOf(net::IPv4Addr addr) const {
  std::uint32_t key = net::BlockKeyOf(addr);
  // Country regions are few (~31); linear scan is simpler than keeping a
  // sorted index and plenty fast for lookup rates in this project.
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (key >= regions_[i].first_block && key <= regions_[i].last_block) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

}  // namespace ipscope::geo
