#include "rdns/tagger.h"

namespace ipscope::rdns {

const char* TagName(RdnsTag tag) {
  switch (tag) {
    case RdnsTag::kUntagged:
      return "untagged";
    case RdnsTag::kStatic:
      return "static";
    case RdnsTag::kDynamic:
      return "dynamic";
  }
  return "?";
}

RdnsTag Tagger::ClassifyName(std::string_view name) {
  auto contains = [&](std::string_view needle) {
    return name.find(needle) != std::string_view::npos;
  };
  if (contains("static")) return RdnsTag::kStatic;
  if (contains("dynamic") || contains("pool") || contains("dyn") ||
      contains("dsl") || contains("ppp") || contains("dialup")) {
    return RdnsTag::kDynamic;
  }
  return RdnsTag::kUntagged;
}

RdnsTag Tagger::TagBlock(std::span<const std::string> names) const {
  if (static_cast<int>(names.size()) < min_names_) return RdnsTag::kUntagged;
  int statics = 0, dynamics = 0;
  for (const std::string& name : names) {
    switch (ClassifyName(name)) {
      case RdnsTag::kStatic:
        ++statics;
        break;
      case RdnsTag::kDynamic:
        ++dynamics;
        break;
      case RdnsTag::kUntagged:
        break;
    }
  }
  double n = static_cast<double>(names.size());
  if (statics > dynamics && statics / n >= consistency_) {
    return RdnsTag::kStatic;
  }
  if (dynamics > statics && dynamics / n >= consistency_) {
    return RdnsTag::kDynamic;
  }
  return RdnsTag::kUntagged;
}

TaggedBlocks TagBlocks(const PtrGenerator& ptr,
                       std::span<const net::BlockKey> keys,
                       const Tagger& tagger) {
  TaggedBlocks out;
  for (net::BlockKey key : keys) {
    auto names = ptr.BlockNames(key);
    switch (tagger.TagBlock(names)) {
      case RdnsTag::kStatic:
        out.static_blocks.push_back(key);
        break;
      case RdnsTag::kDynamic:
        out.dynamic_blocks.push_back(key);
        break;
      case RdnsTag::kUntagged:
        break;
    }
  }
  return out;
}

}  // namespace ipscope::rdns
