// Keyword-based static/dynamic block tagging (paper §5.3).
//
// "We used PTR (reverse DNS) records and tagged /24 blocks containing
// addresses with consistent names that suggest static (keyword static) as
// well as dynamic (keyword dynamic, pool) assignment."
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/prefix.h"
#include "rdns/ptr.h"

namespace ipscope::rdns {

enum class RdnsTag { kUntagged, kStatic, kDynamic };

const char* TagName(RdnsTag tag);

class Tagger {
 public:
  // Requires at least `min_names` non-empty records of which at least
  // `consistency` agree on one keyword class.
  explicit Tagger(int min_names = 8, double consistency = 0.6)
      : min_names_(min_names), consistency_(consistency) {}

  // Classifies a single PTR name: static / dynamic / neither.
  static RdnsTag ClassifyName(std::string_view name);

  RdnsTag TagBlock(std::span<const std::string> names) const;

 private:
  int min_names_;
  double consistency_;
};

struct TaggedBlocks {
  std::vector<net::BlockKey> static_blocks;
  std::vector<net::BlockKey> dynamic_blocks;
};

// Tags every block in `keys` using the generator's records.
TaggedBlocks TagBlocks(const PtrGenerator& ptr,
                       std::span<const net::BlockKey> keys,
                       const Tagger& tagger = Tagger{});

}  // namespace ipscope::rdns
