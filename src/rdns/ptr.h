// Reverse DNS (PTR) record synthesis.
//
// ISPs overwhelmingly name their address space after its assignment
// mechanism ("static", "dynamic", "pool", "dsl", "ppp", ...), which is what
// makes the paper's §5.3 tagging methodology work. The generator names each
// block according to its true policy with realistic noise: some blocks have
// generic names, some have no PTR records at all, and per-host coverage is
// incomplete.
#pragma once

#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "sim/world.h"

namespace ipscope::rdns {

class PtrGenerator {
 public:
  explicit PtrGenerator(const sim::World& world);

  // The PTR record of an address, or "" when none exists.
  std::string PtrName(net::IPv4Addr addr) const;

  // All non-empty PTR names within a /24 (at most 256).
  std::vector<std::string> BlockNames(net::BlockKey key) const;

 private:
  const sim::BlockPlan* FindPlan(net::BlockKey key) const;

  const sim::World& world_;
  std::vector<std::uint32_t> index_;  // block indices sorted by key
};

}  // namespace ipscope::rdns
