#include "rdns/ptr.h"

#include <algorithm>

#include "rng/rng.h"

namespace ipscope::rdns {

namespace {

constexpr std::uint64_t kTagNaming = 0xd501;
constexpr std::uint64_t kTagHostHasPtr = 0xd502;

double HashUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Per-block naming scheme: which template the operator uses.
enum class Scheme { kNone, kStatic, kDynPool, kDynDsl, kDynPpp, kNat,
                    kServer, kRouter, kGeneric };

Scheme SchemeFor(const sim::BlockPlan& plan) {
  double u = HashUnit(rng::Substream(plan.block_seed, kTagNaming));
  // Operator noise: 10% of blocks have no PTR zone, 8% use generic names
  // that reveal nothing about assignment practice.
  if (u < 0.10) return Scheme::kNone;
  if (u < 0.18) return Scheme::kGeneric;
  switch (plan.base.kind) {
    case sim::PolicyKind::kStatic:
      return Scheme::kStatic;
    case sim::PolicyKind::kDynamicShort:
      return u < 0.6 ? Scheme::kDynPool : Scheme::kDynDsl;
    case sim::PolicyKind::kDynamicLong:
      return u < 0.5 ? Scheme::kDynDsl : Scheme::kDynPpp;
    case sim::PolicyKind::kCgnGateway:
      return Scheme::kNat;
    case sim::PolicyKind::kServerFarm:
    case sim::PolicyKind::kCrawlerBots:
      return Scheme::kServer;
    case sim::PolicyKind::kRouterInfra:
      return Scheme::kRouter;
    case sim::PolicyKind::kUnused:
    case sim::PolicyKind::kMiddlebox:
      return Scheme::kNone;  // no PTR naming convention exists for these
  }
  return Scheme::kNone;
}

std::string NameFor(Scheme scheme, const sim::BlockPlan& plan,
                    net::IPv4Addr addr) {
  auto dashed = [&] {
    std::string s = addr.ToString();
    std::replace(s.begin(), s.end(), '.', '-');
    return s;
  };
  std::string asn = std::to_string(plan.asn);
  switch (scheme) {
    case Scheme::kStatic:
      return "host-" + dashed() + ".static.as" + asn + ".example.net";
    case Scheme::kDynPool:
      return "pool-" + dashed() + ".dynamic.as" + asn + ".example.net";
    case Scheme::kDynDsl:
      return "dsl-" + dashed() + ".dyn.as" + asn + ".example.net";
    case Scheme::kDynPpp:
      return "ppp-" + dashed() + ".dialup.as" + asn + ".example.net";
    case Scheme::kNat:
      return "nat-gw-" + dashed() + ".as" + asn + ".example.net";
    case Scheme::kServer:
      return "srv-" + dashed() + ".dc.as" + asn + ".example.net";
    case Scheme::kRouter:
      return "core-" + dashed() + ".as" + asn + ".example.net";
    case Scheme::kGeneric:
      return "h" + dashed() + ".as" + asn + ".example.net";
    case Scheme::kNone:
      return "";
  }
  return "";
}

}  // namespace

PtrGenerator::PtrGenerator(const sim::World& world) : world_(world) {
  index_.resize(world.blocks().size());
  for (std::uint32_t i = 0; i < index_.size(); ++i) index_[i] = i;
  std::sort(index_.begin(), index_.end(), [&](std::uint32_t a, std::uint32_t b) {
    return net::BlockKeyOf(world.blocks()[a].block) <
           net::BlockKeyOf(world.blocks()[b].block);
  });
}

const sim::BlockPlan* PtrGenerator::FindPlan(net::BlockKey key) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key, [&](std::uint32_t i, net::BlockKey k) {
        return net::BlockKeyOf(world_.blocks()[i].block) < k;
      });
  if (it == index_.end() ||
      net::BlockKeyOf(world_.blocks()[*it].block) != key) {
    return nullptr;
  }
  return &world_.blocks()[*it];
}

std::string PtrGenerator::PtrName(net::IPv4Addr addr) const {
  const sim::BlockPlan* plan = FindPlan(net::BlockKeyOf(addr));
  if (plan == nullptr) return "";
  Scheme scheme = SchemeFor(*plan);
  if (scheme == Scheme::kNone) return "";
  // Per-host gaps: a few addresses lack records even in named zones.
  int host = static_cast<int>(addr.value() & 0xFF);
  if (HashUnit(rng::Substream(plan->block_seed, kTagHostHasPtr, host)) >=
      0.95) {
    return "";
  }
  return NameFor(scheme, *plan, addr);
}

std::vector<std::string> PtrGenerator::BlockNames(net::BlockKey key) const {
  std::vector<std::string> out;
  std::uint32_t base = key << 8;
  for (int host = 0; host < 256; ++host) {
    std::string name = PtrName(net::IPv4Addr{base + static_cast<std::uint32_t>(host)});
    if (!name.empty()) out.push_back(std::move(name));
  }
  return out;
}

}  // namespace ipscope::rdns
