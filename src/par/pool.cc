#include "par/pool.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/registry.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ipscope::par {

namespace {

// True while this thread is executing chunks of some region (worker or
// submitter). Nested RunChunks calls from such a thread run inline.
thread_local bool tl_in_region = false;

// Save/restore rather than set/clear: an inline nested region ends before
// the enclosing chunk body does, and clearing the flag there would let the
// *next* nested region take the parallel path and self-deadlock on
// region_mu_.
struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tl_in_region) { tl_in_region = true; }
  ~RegionGuard() { tl_in_region = prev; }
};

// Per-chunk telemetry, written by exactly one participant (the chunk's
// executor) and read by the submitter after the region completes — the
// region's done/active handshake orders the accesses, so no atomics needed.
struct ChunkStat {
  double wait_s = 0;            // region submit -> chunk start
  double dur_s = -1;            // execution time; -1 = cancelled, never ran
  std::int64_t start_us = 0;    // trace timestamp (only when tracing is on)
  std::uint32_t slot = 0;       // executing participant slot
};

}  // namespace

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::optional<int> ParseThreadsEnv(std::string_view text, std::string* error) {
  // Whole-string checked parse (PR 1's policy for CLI flags, applied to the
  // environment too): no leading whitespace, no trailing junk, no silent
  // truncation of "banana" to 0 or "-3" to a fallback.
  int value = 0;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (text.empty() || ec == std::errc::invalid_argument || ptr != last) {
    if (error != nullptr) *error = "not a number";
    return std::nullopt;
  }
  if (ec == std::errc::result_out_of_range || value < 1 ||
      value > kMaxThreadsEnv) {
    if (error != nullptr) {
      *error = "out of range [1, " + std::to_string(kMaxThreadsEnv) + "]";
    }
    return std::nullopt;
  }
  return value;
}

int DefaultThreads() {
  static const int threads = [] {
    // lint: getenv(blessed wrapper: DefaultThreads is the single audited
    // reader of IPSCOPE_THREADS and feeds it through the checked
    // ParseThreadsEnv parse below)
    if (const char* env = std::getenv("IPSCOPE_THREADS")) {
      std::string error;
      if (auto n = ParseThreadsEnv(env, &error)) return *n;
      // lint: io(contract from PR 5: a malformed IPSCOPE_THREADS is never
      // a silent fallback — this one-line stderr warning is the report,
      // and obs is not yet initialized this early in process startup)
      std::fprintf(stderr,
                   "ipscope: ignoring IPSCOPE_THREADS='%s' (%s); using %d "
                   "hardware threads\n",
                   env, error.c_str(), HardwareThreads());
    }
    return HardwareThreads();
  }();
  return threads;
}

ChunkLayout ChunkLayout::Of(std::size_t first, std::size_t last,
                            std::size_t grain) {
  ChunkLayout layout;
  layout.first = first;
  layout.count = last > first ? last - first : 0;
  if (layout.count == 0) return layout;
  if (grain == 0) grain = 1;
  layout.chunks = std::min((layout.count + grain - 1) / grain, kMaxChunks);
  return layout;
}

// One parallel region: chunk indices [0, chunks) dealt into `participants`
// bands, each with an atomic claim cursor. A participant drains its own
// band first, then steals from the other bands' cursors.
struct Pool::Job {
  std::size_t chunks = 0;
  std::size_t participants = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::unique_ptr<std::atomic<std::size_t>[]> cursor;  // per band
  std::vector<std::size_t> band_last;                  // per band, exclusive
  std::atomic<std::size_t> joined{0};  // participant slots handed out
  std::atomic<std::size_t> done{0};    // chunks finished or cancelled
  std::atomic<std::uint64_t> steals{0};
  std::size_t active = 0;  // workers inside Participate; guarded by pool mu_
  // Publish generation (stamped under pool mu_, never 0). Workers compare
  // it against the last generation they executed, so a job stays joinable
  // for its whole lifetime — including by workers that started (or finished
  // their previous region) after it was published.
  std::uint64_t generation = 0;
  std::mutex err_mu;
  std::exception_ptr error;

  // Telemetry, batched per region: two steady-clock reads per chunk on the
  // hot path, one registry/trace flush on the submitter (FlushTelemetry).
  obs::Stopwatch region_watch;  // starts at region submit
  bool trace_on = false;
  std::unique_ptr<ChunkStat[]> stat;  // per chunk
  std::unique_ptr<double[]> busy;     // per participant slot, seconds

  Job(std::size_t chunks_in, std::size_t participants_in,
      const std::function<void(std::size_t)>* fn_in)
      : chunks(chunks_in), participants(participants_in), fn(fn_in) {
    cursor = std::make_unique<std::atomic<std::size_t>[]>(participants);
    stat = std::make_unique<ChunkStat[]>(chunks);
    busy = std::make_unique<double[]>(participants);  // value-init: zeros
    band_last.resize(participants);
    std::size_t base = chunks / participants;
    std::size_t rem = chunks % participants;
    std::size_t pos = 0;
    for (std::size_t b = 0; b < participants; ++b) {
      cursor[b].store(pos, std::memory_order_relaxed);
      pos += base + (b < rem ? 1 : 0);
      band_last[b] = pos;
    }
  }

  // Cancels every unclaimed chunk (after a chunk threw): swing each band
  // cursor to its end and account the skipped chunks as done so the
  // submitter's completion wait still converges.
  void Cancel() {
    for (std::size_t b = 0; b < participants; ++b) {
      std::size_t old = cursor[b].exchange(band_last[b]);
      if (old < band_last[b]) {
        done.fetch_add(band_last[b] - old, std::memory_order_acq_rel);
      }
    }
  }
};

Pool::Pool(int threads) {
  if (threads <= 0) threads = DefaultThreads();
  std::unique_lock region(region_mu_);
  SpawnLocked(threads);
}

Pool::~Pool() { StopAndJoin(); }

void Pool::SpawnLocked(int threads) {
  threads_.store(threads, std::memory_order_relaxed);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  obs::GlobalRegistry().GetGauge("par.pool.threads").Set(threads);
}

void Pool::StopAndJoin() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard lk(mu_);
    stop_ = false;
  }
}

void Pool::Resize(int threads) {
  if (threads <= 0) threads = DefaultThreads();
  std::unique_lock region(region_mu_);
  if (threads == threads_.load(std::memory_order_relaxed)) return;
  StopAndJoin();
  SpawnLocked(threads);
}

void Pool::WorkerMain() {
  std::unique_lock lk(mu_);
  // Publish generation of the last job this worker executed. Jobs are
  // stamped with generations >= 1, so 0 means "none yet" and a worker that
  // spawned mid-region still joins it. Comparing against the job's own
  // stamp (not the pool counter) also means a worker never re-enters a
  // region it already finished, without a separate retirement wait.
  std::uint64_t last_done = 0;
  for (;;) {
    cv_.wait(lk, [&] {
      return stop_ || (job_ != nullptr && job_->generation != last_done);
    });
    if (stop_) return;
    Job* job = job_;
    ++job->active;  // pins the job: the submitter waits for active == 0
    lk.unlock();
    Participate(*job);
    lk.lock();
    last_done = job->generation;
    --job->active;
    done_cv_.notify_all();
  }
}

void Pool::Participate(Job& job) {
  std::size_t slot = job.joined.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= job.participants) return;  // more helpers than bands
  RegionGuard guard;
  for (std::size_t offset = 0; offset < job.participants; ++offset) {
    std::size_t band = (slot + offset) % job.participants;
    for (;;) {
      std::size_t c = job.cursor[band].fetch_add(1, std::memory_order_acq_rel);
      if (c >= job.band_last[band]) break;
      if (offset != 0) job.steals.fetch_add(1, std::memory_order_relaxed);
      double wait_s = job.region_watch.Seconds();
      std::int64_t start_us = job.trace_on ? obs::GlobalTrace().NowMicros() : 0;
      obs::Stopwatch chunk_watch;
      bool threw = false;
      try {
        (*job.fn)(c);
      } catch (...) {
        threw = true;
        std::lock_guard elk(job.err_mu);
        if (!job.error) job.error = std::current_exception();
      }
      // A chunk that threw still executed: attribute its time so the trace
      // and busy accounting show where the region's wall clock went.
      ChunkStat& st = job.stat[c];
      st.wait_s = wait_s;
      st.dur_s = chunk_watch.Seconds();
      st.start_us = start_us;
      st.slot = static_cast<std::uint32_t>(slot);
      job.busy[slot] += st.dur_s;
      job.done.fetch_add(1, std::memory_order_acq_rel);
      if (threw) {
        job.Cancel();
        return;
      }
    }
  }
}

void Pool::RunChunks(std::size_t chunks,
                     const std::function<void(std::size_t)>& fn,
                     int max_threads) {
  if (chunks == 0) return;
  auto& registry = obs::GlobalRegistry();
  int cap = threads_.load(std::memory_order_relaxed);
  if (max_threads > 0) cap = std::min(cap, max_threads);

  if (tl_in_region || chunks == 1 || cap <= 1) {
    // Inline path: nested region, trivial region, or an effectively serial
    // pool. Shares the chunk decomposition with the parallel path, so the
    // work (and any exception) is identical. Telemetry attributes every
    // chunk to participant slot 0 (trace track id 1).
    RegionGuard guard;
    obs::TraceRecorder& trace = obs::GlobalTrace();
    const bool trace_on = trace.enabled();
    obs::Histogram& chunk_hist =
        registry.GetHistogram("par.pool.chunk_seconds");
    obs::Histogram& wait_hist =
        registry.GetHistogram("par.pool.queue_wait_seconds");
    obs::Stopwatch region_watch;
    double busy = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      double wait_s = region_watch.Seconds();
      std::int64_t start_us = trace_on ? trace.NowMicros() : 0;
      obs::Stopwatch chunk_watch;
      fn(c);
      double dur_s = chunk_watch.Seconds();
      busy += dur_s;
      chunk_hist.Record(dur_s);
      wait_hist.Record(wait_s);
      if (trace_on) {
        trace.AddCompleteOnTrack("par.chunk", "par", start_us,
                                 static_cast<std::int64_t>(dur_s * 1e6), 1);
      }
    }
    double region_s = region_watch.Seconds();
    registry.GetHistogram("par.pool.region_seconds").Record(region_s);
    registry.GetGauge("par.pool.worker.0.busy_seconds").Add(busy);
    registry.GetGauge("par.pool.worker.0.idle_seconds")
        .Add(std::max(region_s - busy, 0.0));
    registry.GetGauge("par.pool.imbalance_ratio").Set(1.0);
    registry.GetCounter("par.pool.regions").Add(1);
    registry.GetCounter("par.pool.tasks_executed").Add(chunks);
    registry.GetGauge("par.pool.region_participants").Set(1);
    return;
  }

  std::unique_lock region(region_mu_);
  // Re-read under the region lock: Resize also takes it, so the size is
  // stable for the whole region.
  cap = threads_.load(std::memory_order_relaxed);
  if (max_threads > 0) cap = std::min(cap, max_threads);
  std::size_t participants =
      std::min(static_cast<std::size_t>(cap), chunks);

  Job job{chunks, participants, &fn};
  job.trace_on = obs::GlobalTrace().enabled();
  {
    std::lock_guard lk(mu_);
    job.generation = ++generation_;
    job_ = &job;
  }
  cv_.notify_all();
  Participate(job);
  {
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.done.load(std::memory_order_acquire) == chunks &&
             job.active == 0;
    });
    job_ = nullptr;
  }

  FlushTelemetry(job, job.region_watch.Seconds());
  registry.GetCounter("par.pool.regions").Add(1);
  registry.GetCounter("par.pool.tasks_executed").Add(chunks);
  registry.GetCounter("par.pool.steals")
      .Add(job.steals.load(std::memory_order_relaxed));
  registry.GetGauge("par.pool.region_participants")
      .Set(static_cast<double>(participants));
  if (job.error) std::rethrow_exception(job.error);
}

void Pool::FlushTelemetry(const Job& job, double region_seconds) {
  auto& registry = obs::GlobalRegistry();
  obs::Histogram& chunk_hist = registry.GetHistogram("par.pool.chunk_seconds");
  obs::Histogram& wait_hist =
      registry.GetHistogram("par.pool.queue_wait_seconds");
  obs::TraceRecorder& trace = obs::GlobalTrace();
  for (std::size_t c = 0; c < job.chunks; ++c) {
    const ChunkStat& st = job.stat[c];
    if (st.dur_s < 0) continue;  // cancelled after an earlier chunk threw
    chunk_hist.Record(st.dur_s);
    wait_hist.Record(st.wait_s);
    if (job.trace_on) {
      trace.AddCompleteOnTrack("par.chunk", "par", st.start_us,
                               static_cast<std::int64_t>(st.dur_s * 1e6),
                               st.slot + 1);
    }
  }
  registry.GetHistogram("par.pool.region_seconds").Record(region_seconds);
  double total_busy = 0;
  double max_busy = 0;
  for (std::size_t s = 0; s < job.participants; ++s) {
    double busy = job.busy[s];
    total_busy += busy;
    max_busy = std::max(max_busy, busy);
    std::string worker = "par.pool.worker." + std::to_string(s);
    registry.GetGauge(worker + ".busy_seconds").Add(busy);
    registry.GetGauge(worker + ".idle_seconds")
        .Add(std::max(region_seconds - busy, 0.0));
  }
  double mean_busy = total_busy / static_cast<double>(job.participants);
  registry.GetGauge("par.pool.imbalance_ratio")
      .Set(mean_busy > 0 ? max_busy / mean_busy : 1.0);
}

Pool& GlobalPool() {
  static Pool pool{DefaultThreads()};
  return pool;
}

void ParallelFor(Pool& pool, std::size_t first, std::size_t last,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t grain, int max_threads) {
  ChunkLayout layout = ChunkLayout::Of(first, last, grain);
  if (layout.chunks == 0) return;
  pool.RunChunks(
      layout.chunks,
      [&](std::size_t c) { body(layout.ChunkFirst(c), layout.ChunkLast(c)); },
      max_threads);
}

}  // namespace ipscope::par
