// Shared work scheduler: a process-wide persistent thread pool.
//
// Every parallel stage in the pipeline (store building, churn, event-size
// aggregation, pattern classification, change detection) decomposes its
// work into *chunks* and runs them on one shared pool instead of spawning
// ad-hoc threads. Two properties drive the design:
//
//  * Load balance via dynamic chunk stealing. Per-block cost varies wildly
//    (a CGN gateway block generates 256 active hosts every day, a sparse
//    static block a handful), so static range splitting starves workers.
//    Chunks are dealt into per-participant bands; each participant drains
//    its own band through an atomic cursor and then steals from the tails
//    of other bands.
//
//  * Determinism via ordered merge. The chunk decomposition is a function
//    of the range and grain ONLY — never of the thread count — and
//    ParallelReduce gives every chunk its own accumulator, merged on the
//    calling thread in ascending chunk order. Results are therefore
//    bit-identical for any thread count and any scheduling interleaving,
//    even for non-commutative merges (floating-point sums, ordered
//    concatenation). See DESIGN.md §4.8 for the full contract.
//
// Sizing: the global pool starts at IPSCOPE_THREADS (environment) when set,
// otherwise std::thread::hardware_concurrency(). `ipscope_cli --threads N`
// resizes it at startup. A pool of size 1 executes everything inline on the
// caller — the serial path and the parallel path share all code.
//
// Nesting: a parallel region submitted from inside another region's body
// runs inline on the submitting thread (no deadlock, no oversubscription).
// Exceptions thrown by a chunk cancel the remaining chunks (best effort)
// and the first one is rethrown on the calling thread.
//
// Metrics (obs::GlobalRegistry):
//   gauges    par.pool.threads, par.pool.region_participants,
//             par.pool.imbalance_ratio (last region: max participant busy
//             time over mean — 1.0 is perfect balance),
//             par.pool.worker.<slot>.busy_seconds / .idle_seconds
//             (cumulative per participant slot; slot 0 is the submitter on
//             the inline path)
//   counters  par.pool.regions, par.pool.tasks_executed, par.pool.steals
//   histograms par.pool.chunk_seconds (per-chunk execution time),
//             par.pool.queue_wait_seconds (region submit -> chunk start),
//             par.pool.region_seconds (region wall time)
// Per-chunk telemetry is accumulated inside the region and flushed in one
// batch by the submitting thread, so the steady-state cost is two
// steady-clock reads per chunk. When obs::GlobalTrace() is enabled, every
// chunk additionally emits a "par.chunk" trace event on its participant's
// own track (track id = slot + 1), so Perfetto shows the actual per-worker
// schedule instead of one merged lane.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ipscope::par {

// std::thread::hardware_concurrency(), clamped to at least 1.
int HardwareThreads();

// Checked parse of an $IPSCOPE_THREADS value: the whole string must be a
// base-10 integer in [1, kMaxThreadsEnv]. On failure returns nullopt and,
// when `error` is non-null, describes the problem ("not a number",
// "out of range [1, 4096]"). Exposed for tests; DefaultThreads() is the
// consumer.
inline constexpr int kMaxThreadsEnv = 4096;
std::optional<int> ParseThreadsEnv(std::string_view text,
                                   std::string* error = nullptr);

// Pool size for GlobalPool(): $IPSCOPE_THREADS when set to a valid positive
// integer, HardwareThreads() otherwise. A malformed or out-of-range value
// is ignored with a one-line stderr warning (never a silent fallback).
// Read once per process.
int DefaultThreads();

// How [first, last) splits into chunks. The decomposition depends only on
// the range and grain (kMaxChunks caps scheduling overhead), never on the
// thread count — the cornerstone of the determinism contract.
struct ChunkLayout {
  static constexpr std::size_t kMaxChunks = 256;

  std::size_t first = 0;
  std::size_t count = 0;
  std::size_t chunks = 0;

  // grain = minimum elements per chunk (>= 1).
  static ChunkLayout Of(std::size_t first, std::size_t last,
                        std::size_t grain);

  std::size_t ChunkFirst(std::size_t c) const {
    std::size_t base = count / chunks;
    std::size_t rem = count % chunks;
    return first + c * base + (c < rem ? c : rem);
  }
  std::size_t ChunkLast(std::size_t c) const { return ChunkFirst(c + 1); }
};

class Pool {
 public:
  // threads <= 0 selects DefaultThreads(). A pool of size T keeps T-1
  // background workers; the thread that submits a region always
  // participates, so T threads execute chunks in total.
  explicit Pool(int threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return threads_.load(std::memory_order_relaxed); }

  // Joins all workers and respawns with the new size. Must not be called
  // from inside a parallel region. threads <= 0 selects DefaultThreads().
  void Resize(int threads);

  // Runs fn(c) for every c in [0, chunks), distributing chunks over the
  // pool with dynamic stealing. Blocks until all chunks finished.
  // max_threads > 0 caps the participants for this region (it never raises
  // them above the pool size). Regions are serialized: one at a time per
  // pool; nested submissions from chunk bodies run inline.
  void RunChunks(std::size_t chunks,
                 const std::function<void(std::size_t)>& fn,
                 int max_threads = 0);

 private:
  struct Job;

  void SpawnLocked(int threads);
  void StopAndJoin();
  void WorkerMain();
  static void Participate(Job& job);
  // Publishes the region's batched per-chunk telemetry (histograms,
  // per-worker busy/idle gauges, imbalance ratio, trace events) from the
  // submitting thread after every participant has left the region.
  static void FlushTelemetry(const Job& job, double region_seconds);

  mutable std::mutex mu_;            // guards job_, generation_, stop_
  std::condition_variable cv_;       // workers: new job published / stop
  std::condition_variable done_cv_;  // submitter: region finished
  std::mutex region_mu_;             // serializes parallel regions + Resize
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<int> threads_{1};
};

// The process-wide pool every pipeline stage shares.
Pool& GlobalPool();

// Runs body(chunk_first, chunk_last) over disjoint chunks covering
// [first, last). grain = minimum elements per chunk.
void ParallelFor(Pool& pool, std::size_t first, std::size_t last,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t grain = 1, int max_threads = 0);

// Deterministic parallel reduction.
//
//   Acc      copyable accumulator; `init` must be the identity (it seeds
//            every per-chunk partial, so a non-empty init would be counted
//            once per chunk).
//   chunk_fn (Acc&, std::size_t chunk_first, std::size_t chunk_last):
//            folds one element range into the chunk's accumulator.
//   merge    (Acc&, Acc&&): folds a chunk partial into the result; called
//            on the submitting thread in ascending chunk order, so the
//            result is bit-identical for any thread count even when merge
//            is not commutative (FP sums, concatenation).
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc ParallelReduce(Pool& pool, std::size_t first, std::size_t last, Acc init,
                   ChunkFn&& chunk_fn, MergeFn&& merge, std::size_t grain = 1,
                   int max_threads = 0) {
  ChunkLayout layout = ChunkLayout::Of(first, last, grain);
  if (layout.chunks == 0) return init;
  if (layout.chunks == 1) {
    chunk_fn(init, first, last);
    return init;
  }
  std::vector<Acc> partials(layout.chunks, init);
  pool.RunChunks(
      layout.chunks,
      [&](std::size_t c) {
        chunk_fn(partials[c], layout.ChunkFirst(c), layout.ChunkLast(c));
      },
      max_threads);
  Acc result = std::move(partials[0]);
  for (std::size_t c = 1; c < layout.chunks; ++c) {
    merge(result, std::move(partials[c]));
  }
  return result;
}

// Same, against the global pool.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc ParallelReduce(std::size_t first, std::size_t last, Acc init,
                   ChunkFn&& chunk_fn, MergeFn&& merge, std::size_t grain = 1,
                   int max_threads = 0) {
  return ParallelReduce(GlobalPool(), first, last, std::move(init),
                        std::forward<ChunkFn>(chunk_fn),
                        std::forward<MergeFn>(merge), grain, max_threads);
}

}  // namespace ipscope::par
