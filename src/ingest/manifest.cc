#include "ingest/manifest.h"

#include <charconv>
#include <cstdio>

#include "io/crc32c.h"

namespace ipscope::ingest {

namespace {

constexpr std::string_view kHeader = "ipscope-manifest v1";
constexpr int kMaxDays = 4096;  // mirrors store_io's plausibility bound

io::StoreError Malformed(std::uint64_t offset, std::string message) {
  return io::StoreError{io::StoreErrorKind::kMalformed, offset,
                        std::move(message)};
}

std::string HexCrc(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// Whole-token checked parses; any trailing junk is a malformed manifest,
// never a silently truncated value.
template <typename T>
bool ParseToken(std::string_view token, T* out) {
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), last, *out);
  return ec == std::errc{} && ptr == last && !token.empty();
}

bool ParseHex32(std::string_view token, std::uint32_t* out) {
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), last, *out, 16);
  return ec == std::errc{} && ptr == last && !token.empty();
}

// Splits a line on single spaces into at most `max` fields; returns false
// when the field count differs (empty fields included — "a  b" is three).
bool SplitFields(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return true;
}

}  // namespace

bool ValidManifestToken(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool Manifest::HasDelta(std::string_view delta_id) const {
  for (const ShardEntry& s : shards) {
    if (s.delta_id == delta_id) return true;
  }
  return false;
}

bool Manifest::HasShardFile(std::string_view file) const {
  for (const ShardEntry& s : shards) {
    if (s.file == file) return true;
  }
  return false;
}

std::string Manifest::Serialize() const {
  std::string out{kHeader};
  out += "\ndays " + std::to_string(days) + "\n";
  for (const ShardEntry& s : shards) {
    out += "shard " + s.file + " " + std::to_string(s.day_first) + " " +
           std::to_string(s.day_last) + " " + s.delta_id + " " +
           std::to_string(s.bytes) + " " + HexCrc(s.crc32c) + "\n";
  }
  out += "commit " + HexCrc(io::Crc32c(out.data(), out.size())) + "\n";
  return out;
}

Result<Manifest, io::StoreError> ParseManifest(std::string_view text) {
  Manifest manifest;
  std::vector<std::string_view> fields;
  bool saw_header = false;
  bool saw_days = false;
  bool saw_commit = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      return Malformed(text.size(), "manifest does not end with a newline");
    }
    std::string_view line = text.substr(pos, eol - pos);
    std::size_t line_offset = pos;
    std::size_t next = eol + 1;

    if (saw_commit) {
      return Malformed(line_offset, "content after the commit line");
    }
    if (!saw_header) {
      if (line != kHeader) {
        return io::StoreError{io::StoreErrorKind::kBadMagic, line_offset,
                              "not a store manifest (bad header line)"};
      }
      saw_header = true;
    } else if (!saw_days) {
      SplitFields(line, fields);
      int days = 0;
      if (fields.size() != 2 || fields[0] != "days" ||
          !ParseToken(fields[1], &days) || days <= 0 || days > kMaxDays) {
        return Malformed(line_offset,
                         "expected 'days <1.." + std::to_string(kMaxDays) +
                             ">', got '" + std::string(line) + "'");
      }
      manifest.days = days;
      saw_days = true;
    } else if (line.substr(0, 6) == "shard ") {
      SplitFields(line, fields);
      ShardEntry entry;
      bool ok = fields.size() == 7;
      if (ok) {
        entry.file = std::string(fields[1]);
        entry.delta_id = std::string(fields[4]);
        ok = ValidManifestToken(entry.file) &&
             ValidManifestToken(entry.delta_id) &&
             ParseToken(fields[2], &entry.day_first) &&
             ParseToken(fields[3], &entry.day_last) &&
             ParseToken(fields[5], &entry.bytes) &&
             ParseHex32(fields[6], &entry.crc32c);
      }
      if (!ok || entry.day_first < 0 || entry.day_last < entry.day_first ||
          entry.day_last >= manifest.days) {
        return Malformed(line_offset,
                         "malformed shard line '" + std::string(line) + "'");
      }
      if (manifest.HasDelta(entry.delta_id) ||
          manifest.HasShardFile(entry.file)) {
        return Malformed(line_offset, "duplicate shard entry '" +
                                          std::string(line) + "'");
      }
      manifest.shards.push_back(std::move(entry));
    } else if (line.substr(0, 7) == "commit ") {
      std::uint32_t recorded = 0;
      if (!ParseHex32(line.substr(7), &recorded)) {
        return Malformed(line_offset,
                         "malformed commit line '" + std::string(line) + "'");
      }
      std::uint32_t actual = io::Crc32c(text.data(), line_offset);
      if (recorded != actual) {
        return io::StoreError{io::StoreErrorKind::kChecksumMismatch,
                              line_offset, "manifest checksum mismatch"};
      }
      saw_commit = true;
    } else {
      return Malformed(line_offset,
                       "unrecognized line '" + std::string(line) + "'");
    }
    pos = next;
  }
  if (!saw_commit) {
    return io::StoreError{
        io::StoreErrorKind::kTruncated, text.size(),
        saw_header ? "manifest has no commit line"
                   : "empty manifest (no header line)"};
  }
  return manifest;
}

}  // namespace ipscope::ingest
