#include "ingest/session.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "fault/crash.h"
#include "io/atomic_file.h"
#include "io/crc32c.h"
#include "io/store_io.h"
// lint: fork(registry mutexes are leaf-scoped — locked and released
// inside each counter call, never held across user code — and chaos-crash
// forks from the single-threaded CLI before any worker thread exists)
#include "obs/registry.h"

namespace ipscope::ingest {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kShardSuffix = ".ips2";
constexpr std::string_view kQuarantineDir = "quarantine";

io::StoreError WriteError(std::string message) {
  return io::StoreError{io::StoreErrorKind::kWriteFailed, 0,
                        std::move(message)};
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// Reads a whole file; returns false on any open/read failure.
bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream is{path, std::ios::binary};
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) return false;
  *out = std::move(buf).str();
  return true;
}

// Moves `name` (relative to dir) into dir/quarantine/, deduplicating the
// target name if a previous recovery already parked one like it.
bool Quarantine(const fs::path& dir, const std::string& name,
                RecoveryReport* report) {
  std::error_code ec;
  fs::create_directories(dir / kQuarantineDir, ec);
  if (ec) return false;
  fs::path target = dir / kQuarantineDir / name;
  for (int attempt = 1; fs::exists(target, ec) && attempt < 100; ++attempt) {
    target = dir / kQuarantineDir / (name + "." + std::to_string(attempt));
  }
  fs::rename(dir / name, target, ec);
  if (ec) return false;
  report->quarantined.push_back(name);
  obs::GlobalRegistry().GetCounter("ingest.quarantined_files").Add(1);
  return true;
}

// Verifies a committed shard's bytes against its manifest entry and
// returns the raw bytes (the caller parses them when composing).
Result<std::string, io::StoreError> ReadShard(const fs::path& dir,
                                              const ShardEntry& entry) {
  std::string bytes;
  if (!ReadFile(dir / entry.file, &bytes)) {
    return io::StoreError{io::StoreErrorKind::kOpenFailed, 0,
                          "committed shard missing or unreadable: " +
                              entry.file};
  }
  if (bytes.size() != entry.bytes) {
    return io::StoreError{
        io::StoreErrorKind::kTruncated, bytes.size(),
        "shard " + entry.file + " is " + std::to_string(bytes.size()) +
            " bytes, manifest committed " + std::to_string(entry.bytes)};
  }
  if (io::Crc32c(bytes.data(), bytes.size()) != entry.crc32c) {
    return io::StoreError{io::StoreErrorKind::kChecksumMismatch, 0,
                          "shard " + entry.file +
                              " does not match its manifest checksum"};
  }
  return bytes;
}

// The deliberately seeded recovery bug for the chaos-crash teeth test
// (scripts/run_all.sh): when IPSCOPE_INGEST_SKIP_ROLLBACK=1, recovery
// adopts orphaned shard files as if they were committed instead of
// quarantining them — exactly the bug the gate must catch. Never set this
// outside the gate's self-test.
bool SkipRollbackForTeethTest() {
  auto value = obs::EnvString("IPSCOPE_INGEST_SKIP_ROLLBACK");
  return value && *value == "1";
}

// Day range + validity of a delta store's coverage mask.
struct DayRange {
  int first = -1;
  int last = -1;
};

DayRange CoveredRange(const activity::ActivityStore& store) {
  DayRange range;
  for (int d = 0; d < store.days(); ++d) {
    if (!store.DayCovered(d)) continue;
    if (range.first < 0) range.first = d;
    range.last = d;
  }
  return range;
}

}  // namespace

Result<Session, io::StoreError> Session::Open(const std::string& dir,
                                              int days) {
  auto& registry = obs::GlobalRegistry();
  registry.GetCounter("ingest.recoveries").Add(1);

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return io::StoreError{io::StoreErrorKind::kOpenFailed, 0,
                          "cannot create store directory " + dir + ": " +
                              ec.message()};
  }

  RecoveryReport recovery;

  // Pass 1: quarantine torn temp files — a crash mid-write leaves
  // "<name>.tmp", which by protocol is never part of the store.
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    return io::StoreError{io::StoreErrorKind::kOpenFailed, 0,
                          "cannot scan store directory " + dir + ": " +
                              ec.message()};
  }
  std::sort(names.begin(), names.end());  // deterministic recovery order
  for (const std::string& name : names) {
    if (EndsWith(name, io::kTempSuffix)) {
      Quarantine(dir, name, &recovery);
    }
  }

  // Pass 2: the manifest. Absent manifest = empty store (first open, or a
  // crash before the very first commit — any shards present are orphans).
  Manifest manifest;
  std::string manifest_text;
  if (ReadFile(fs::path(dir) / kManifestName, &manifest_text)) {
    auto parsed = ParseManifest(manifest_text);
    if (!parsed.ok()) {
      registry.GetCounter("io.manifest.errors").Add(1);
      io::StoreError error = parsed.error();
      error.message = dir + "/MANIFEST: " + error.message;
      return error;
    }
    manifest = std::move(parsed).value();
    if (days > 0 && manifest.days != days) {
      return io::StoreError{
          io::StoreErrorKind::kMalformed, 0,
          "store has days=" + std::to_string(manifest.days) +
              ", caller expected " + std::to_string(days)};
    }
  } else {
    if (days <= 0) {
      return io::StoreError{io::StoreErrorKind::kOpenFailed, 0,
                            "no manifest in " + dir +
                                " and no day count given to create one"};
    }
    manifest.days = days;
  }

  // Pass 3: verify every committed shard and quarantine orphans — shard
  // files on disk that the manifest does not name (a crash landed between
  // the shard rename and the manifest commit). Rolling those back is what
  // "recover to the last committed manifest" means.
  const bool adopt_orphans = SkipRollbackForTeethTest();
  for (const std::string& name : names) {
    if (!EndsWith(name, kShardSuffix) || manifest.HasShardFile(name)) {
      continue;
    }
    if (!adopt_orphans) {
      Quarantine(dir, name, &recovery);
      continue;
    }
    // Teeth-test bug path: blindly adopt the orphan as committed.
    std::string bytes;
    if (!ReadFile(fs::path(dir) / name, &bytes)) continue;
    auto loaded = io::TryLoadStoreFile((fs::path(dir) / name).string());
    if (!loaded.ok()) continue;
    DayRange range = CoveredRange(loaded.value().store);
    manifest.shards.push_back(ShardEntry{
        name, range.first < 0 ? 0 : range.first,
        range.last < 0 ? 0 : range.last, "adopted-" + name, bytes.size(),
        io::Crc32c(bytes.data(), bytes.size())});
  }
  for (const ShardEntry& entry : manifest.shards) {
    auto bytes = ReadShard(dir, entry);
    if (!bytes.ok()) return bytes.error();
  }

  return Session{dir, std::move(manifest), std::move(recovery)};
}

Result<AppendResult, io::StoreError> Session::Append(
    const activity::ActivityStore& delta, const std::string& delta_id) {
  auto& registry = obs::GlobalRegistry();
  if (!ValidManifestToken(delta_id)) {
    return io::StoreError{io::StoreErrorKind::kMalformed, 0,
                          "delta id '" + delta_id +
                              "' is not a manifest token ([A-Za-z0-9._-]+)"};
  }
  if (delta.days() != manifest_.days) {
    return io::StoreError{
        io::StoreErrorKind::kMalformed, 0,
        "delta has days=" + std::to_string(delta.days()) +
            ", store has days=" + std::to_string(manifest_.days)};
  }
  if (manifest_.HasDelta(delta_id)) {
    // Idempotent replay: this delta already committed; change nothing.
    registry.GetCounter("ingest.append_duplicates").Add(1);
    for (const ShardEntry& s : manifest_.shards) {
      if (s.delta_id == delta_id) {
        return AppendResult{false, s.file, s.bytes};
      }
    }
  }
  DayRange range = CoveredRange(delta);
  if (range.first < 0) {
    return io::StoreError{io::StoreErrorKind::kMalformed, 0,
                          "delta covers no days"};
  }

  // Serialize the shard in memory; the bytes are committed via the atomic
  // write path below. (SaveStore is pool-free, so Append is safe even in
  // a forked child of a multithreaded parent — the chaos gate relies on
  // this.)
  std::ostringstream buffer{std::ios::binary};
  io::SaveStore(delta, buffer);
  std::string bytes = std::move(buffer).str();

  char shard_name[64];
  std::snprintf(shard_name, sizeof(shard_name), "shard-%03d-%03d-",
                range.first, range.last);
  std::string shard_file = std::string(shard_name) + delta_id +
                           std::string(kShardSuffix);
  if (manifest_.HasShardFile(shard_file)) {
    return io::StoreError{io::StoreErrorKind::kMalformed, 0,
                          "shard file " + shard_file + " already committed"};
  }

  // Step 1: the shard, durably, under its final name. Crash points cover
  // every syscall boundary; mid-shard-write lands inside a partial file.
  io::AtomicWriteHooks shard_hooks;
  shard_hooks.split_at = fault::CrashSplitOffset(bytes.size());
  shard_hooks.at = [](std::string_view stage) {
    if (stage == "pre-temp-write") fault::MaybeCrash("pre-temp-write");
    if (stage == "mid-write") fault::MaybeCrash("mid-shard-write");
    if (stage == "pre-fsync") fault::MaybeCrash("pre-fsync");
    if (stage == "pre-rename") fault::MaybeCrash("pre-rename");
  };
  std::string shard_path = (fs::path(dir_) / shard_file).string();
  if (auto error = io::WriteFileAtomic(shard_path, bytes, &shard_hooks)) {
    return WriteError("shard commit: " + *error);
  }

  // Step 2: the manifest — THE commit point. Until its rename lands, the
  // store still reads as the previous prefix and the shard above is an
  // orphan that recovery rolls back.
  fault::MaybeCrash("pre-manifest-append");
  Manifest next = manifest_;
  next.shards.push_back(ShardEntry{shard_file, range.first, range.last,
                                   delta_id, bytes.size(),
                                   io::Crc32c(bytes.data(), bytes.size())});
  std::string manifest_bytes = next.Serialize();
  io::AtomicWriteHooks manifest_hooks;
  manifest_hooks.at = [](std::string_view stage) {
    if (stage == "pre-fsync") fault::MaybeCrash("pre-manifest-fsync");
    if (stage == "pre-rename") fault::MaybeCrash("pre-manifest-rename");
  };
  std::string manifest_path = (fs::path(dir_) / kManifestName).string();
  if (auto error = io::WriteFileAtomic(manifest_path, manifest_bytes,
                                       &manifest_hooks)) {
    registry.GetCounter("io.manifest.errors").Add(1);
    return WriteError("manifest commit: " + *error);
  }
  fault::MaybeCrash("post-commit");

  manifest_ = std::move(next);
  registry.GetCounter("ingest.appends").Add(1);
  registry.GetCounter("ingest.shards_committed").Add(1);
  registry.GetCounter("ingest.shard_bytes").Add(bytes.size());
  registry.GetCounter("io.manifest.commits").Add(1);
  registry.GetCounter("io.manifest.bytes").Add(manifest_bytes.size());
  return AppendResult{true, shard_file, bytes.size()};
}

Result<activity::ActivityStore, io::StoreError> Session::Load() const {
  auto& registry = obs::GlobalRegistry();
  activity::ActivityStore combined{manifest_.days};
  for (int d = 0; d < manifest_.days; ++d) combined.SetDayCovered(d, false);

  for (const ShardEntry& entry : manifest_.shards) {
    auto bytes = ReadShard(dir_, entry);
    if (!bytes.ok()) return bytes.error();
    std::istringstream is{std::move(bytes).value(), std::ios::binary};
    auto loaded = io::TryLoadStore(is);
    if (!loaded.ok()) {
      io::StoreError error = loaded.error();
      error.message = entry.file + ": " + error.message;
      return error;
    }
    const activity::ActivityStore& shard = loaded.value().store;
    if (shard.days() != manifest_.days) {
      return io::StoreError{
          io::StoreErrorKind::kMalformed, 0,
          entry.file + " has days=" + std::to_string(shard.days()) +
              ", manifest has days=" + std::to_string(manifest_.days)};
    }
    // Coverage union first (marking a day covered never clears rows;
    // marking it uncovered would), then OR the activity rows.
    for (int d = 0; d < shard.days(); ++d) {
      if (shard.DayCovered(d)) combined.SetDayCovered(d, true);
    }
    shard.ForEach([&](net::BlockKey key, const activity::ActivityMatrix& m) {
      activity::ActivityMatrix& target = combined.GetOrCreate(key);
      for (int d = 0; d < shard.days(); ++d) {
        if (!shard.DayCovered(d)) continue;
        const activity::DayBits& row = m.Row(d);
        activity::DayBits& out = target.Row(d);
        for (std::size_t w = 0; w < row.size(); ++w) out[w] |= row[w];
      }
    });
    registry.GetCounter("ingest.shards_loaded").Add(1);
  }
  registry.GetCounter("ingest.loads").Add(1);
  return combined;
}

}  // namespace ipscope::ingest
