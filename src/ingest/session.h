// Crash-safe incremental ingestion over a day-sharded store directory.
//
// The paper's observatory is continuously fed (a year of daily CDN logs),
// so the reproduction needs the same operational property: a new day of
// data costs O(delta), not O(full history), and a crash at any instant
// loses at most the uncommitted delta. A Session owns one store
// directory:
//
//   <dir>/MANIFEST          commit point (ingest/manifest.h)
//   <dir>/shard-*.ips2      one IPSCOPE2 file per committed delta
//   <dir>/quarantine/       where recovery moves torn/orphaned files
//
// Commit protocol for Append(delta, delta_id):
//   1. serialize the delta as a full-period IPSCOPE2 store whose coverage
//      mask holds exactly the delta's days;
//   2. write the shard: temp file → fsync → checked close → atomic rename;
//   3. write the new MANIFEST (old entries + the new shard line) the same
//      way. The manifest rename is THE commit: before it the store reads
//      as the previous prefix, after it the delta is durable.
// Every syscall boundary of this path is a registered crash point
// (fault/crash.h), swept by `ipscope_cli chaos-crash`.
//
// Recovery (Open): quarantine *.tmp files (torn temp writes) and shard
// files the manifest does not name (orphans: crash between shard rename
// and manifest commit), verify every named shard's size + CRC32C, and
// refuse — with a typed StoreError — a manifest or shard that fails its
// checksum. Open therefore always lands on exactly the last committed
// manifest; salvage semantics for a damaged shard body mirror
// io::TryLoadStore (per-block checksums, typed errors).
//
// Idempotency: a delta id already in the manifest makes Append a no-op
// (AppendResult::applied = false), so replaying a day's logs — the normal
// aftermath of a crash-and-retry loop — changes nothing.
//
// Metrics (obs::GlobalRegistry): ingest.appends, ingest.append_duplicates,
// ingest.shards_committed, ingest.shard_bytes, ingest.recoveries,
// ingest.quarantined_files, ingest.loads, ingest.shards_loaded,
// io.manifest.commits, io.manifest.bytes, io.manifest.errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activity/store.h"
#include "ingest/manifest.h"
#include "io/result.h"
#include "io/store_error.h"

namespace ipscope::ingest {

struct AppendResult {
  bool applied = false;    // false: delta_id already committed (no-op)
  std::string shard_file;  // file name inside the store directory
  std::uint64_t shard_bytes = 0;
};

struct RecoveryReport {
  // Files moved aside into <dir>/quarantine/ (names relative to <dir>).
  std::vector<std::string> quarantined;
};

class Session {
 public:
  // Opens `dir` (creating it if needed), runs recovery, and verifies the
  // committed shards. `days` is the shared observation-period length; it
  // must match an existing manifest, and days <= 0 adopts the manifest's
  // value (an error when the directory has no manifest yet).
  static Result<Session, io::StoreError> Open(const std::string& dir,
                                              int days);

  const std::string& dir() const { return dir_; }
  int days() const { return manifest_.days; }
  const Manifest& manifest() const { return manifest_; }
  const RecoveryReport& recovery() const { return recovery_; }

  // Commits one delta (rows on its covered days; days() must match the
  // store's). delta_id is the idempotency key — [A-Za-z0-9._-]+, one
  // commit ever per id. The delta must cover at least one day.
  Result<AppendResult, io::StoreError> Append(
      const activity::ActivityStore& delta, const std::string& delta_id);

  // Composes every committed shard into one ActivityStore: coverage is
  // the union of shard coverage, activity rows are OR-merged in manifest
  // (commit) order — so all existing analyses run on a sharded store
  // unchanged. Pool-free: safe in single-threaded recovery contexts.
  Result<activity::ActivityStore, io::StoreError> Load() const;

 private:
  Session(std::string dir, Manifest manifest, RecoveryReport recovery)
      : dir_(std::move(dir)),
        manifest_(std::move(manifest)),
        recovery_(std::move(recovery)) {}

  std::string dir_;
  Manifest manifest_;
  RecoveryReport recovery_;
};

}  // namespace ipscope::ingest
