// The MANIFEST of a day-sharded store directory.
//
// A sharded store is a directory of IPSCOPE2 shard files plus one MANIFEST
// text file; a shard is part of the store if and only if the manifest
// names it. The manifest is the commit point of the ingest protocol
// (ingest/session.h): appending a delta writes its shard durably first,
// then replaces the MANIFEST via write-temp → fsync → atomic rename — so
// at every instant the MANIFEST on disk is a complete, self-checksummed
// description of a fully durable set of shards.
//
// Format (text, line-based, byte-exact for CRC purposes):
//
//   ipscope-manifest v1
//   days <N>
//   shard <file> <day_first> <day_last> <delta_id> <bytes> <crc32c-hex>
//   ...
//   commit <crc32c-hex>
//
// One `shard` line per committed shard, in commit order. <day_first> and
// <day_last> are the inclusive covered-day range; <bytes>/<crc32c-hex>
// pin the shard file's exact content so post-commit corruption is
// detected at open. The trailing `commit` line checksums every preceding
// byte of the manifest itself (CRC32C), so a tampered or bit-rotted
// manifest is a typed error, never a silently different store.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/result.h"
#include "io/store_error.h"

namespace ipscope::ingest {

struct ShardEntry {
  std::string file;      // name inside the store directory
  int day_first = 0;     // inclusive
  int day_last = 0;      // inclusive
  std::string delta_id;  // idempotency key: one commit per delta id
  std::uint64_t bytes = 0;
  std::uint32_t crc32c = 0;
};

struct Manifest {
  int days = 0;  // observation-period length shared by all shards
  std::vector<ShardEntry> shards;  // commit order

  bool HasDelta(std::string_view delta_id) const;
  bool HasShardFile(std::string_view file) const;

  // The byte-exact on-disk rendering, commit line included.
  std::string Serialize() const;
};

// Parses and checksum-verifies a serialized manifest. Errors are typed:
// kMalformed for grammar/field violations, kChecksumMismatch when the
// commit line does not match the preceding bytes (offset = byte position
// of the problem).
Result<Manifest, io::StoreError> ParseManifest(std::string_view text);

// True for delta ids / file names the manifest grammar can carry losslessly
// ([A-Za-z0-9._-]+ — no spaces or newlines, which are field separators).
bool ValidManifestToken(std::string_view token);

}  // namespace ipscope::ingest
