#include "lexer.h"

#include <cctype>

namespace ipscope::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Cursor over the source with line/column tracking.
struct Cursor {
  std::string_view src;
  std::size_t pos = 0;
  int line = 1;
  int col = 1;

  bool AtEnd() const { return pos >= src.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  void Advance() {
    if (AtEnd()) return;
    if (src[pos] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos;
  }
  void AdvanceN(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) Advance();
  }
};

// True when the identifier just lexed is a raw-string prefix (R, LR, uR,
// UR, u8R) and the next char opens a raw string.
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

// True when the identifier is an ordinary string/char literal prefix (L,
// u, U, u8) directly followed by a quote.
bool IsLiteralPrefix(std::string_view ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

void LexEscapedLiteral(Cursor& c, char quote, std::string& out) {
  out.push_back(c.Peek());
  c.Advance();  // opening quote
  while (!c.AtEnd()) {
    char ch = c.Peek();
    if (ch == '\\' && c.Peek(1) != '\0') {
      out.push_back(ch);
      out.push_back(c.Peek(1));
      c.AdvanceN(2);
      continue;
    }
    if (ch == '\n') break;  // unterminated literal: recover at EOL
    out.push_back(ch);
    c.Advance();
    if (ch == quote) break;
  }
}

// c sits on the opening '"' of a raw string (prefix already consumed).
void LexRawString(Cursor& c, std::string& out) {
  out.push_back('"');
  c.Advance();
  std::string delim;
  while (!c.AtEnd() && c.Peek() != '(' && c.Peek() != '\n') {
    delim.push_back(c.Peek());
    out.push_back(c.Peek());
    c.Advance();
  }
  if (c.Peek() != '(') return;  // malformed; stop here
  out.push_back('(');
  c.Advance();
  std::string closer = ")" + delim + "\"";
  while (!c.AtEnd()) {
    if (c.src.compare(c.pos, closer.size(), closer) == 0) {
      out += closer;
      c.AdvanceN(closer.size());
      return;
    }
    out.push_back(c.Peek());
    c.Advance();
  }
}

// pp-number: digits, identifier chars, '.', digit separators, and
// sign characters directly after an exponent marker (e/E/p/P).
void LexNumber(Cursor& c, std::string& out) {
  while (!c.AtEnd()) {
    char ch = c.Peek();
    if (IsIdentChar(ch) || ch == '.') {
      out.push_back(ch);
      c.Advance();
      char prev = out.back();
      if ((prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') &&
          (c.Peek() == '+' || c.Peek() == '-') && out.size() > 1 &&
          // hex digits include 'e'; only treat as exponent in the common
          // decimal/hex-float shapes where a sign follows directly.
          true) {
        out.push_back(c.Peek());
        c.Advance();
      }
      continue;
    }
    if (ch == '\'' && IsIdentChar(c.Peek(1))) {  // digit separator
      out.push_back(ch);
      c.Advance();
      continue;
    }
    break;
  }
}

}  // namespace

LexResult Lex(std::string_view source) {
  LexResult result;
  Cursor c{source};
  while (!c.AtEnd()) {
    char ch = c.Peek();
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f' ||
        ch == '\v') {
      c.Advance();
      continue;
    }
    Token tok;
    tok.line = c.line;
    tok.col = c.col;
    if (ch == '/' && c.Peek(1) == '/') {
      tok.kind = TokKind::kComment;
      while (!c.AtEnd() && c.Peek() != '\n') {
        tok.text.push_back(c.Peek());
        c.Advance();
      }
      tok.end_line = c.line;
      result.comments.push_back(std::move(tok));
      continue;
    }
    if (ch == '/' && c.Peek(1) == '*') {
      tok.kind = TokKind::kComment;
      tok.text += "/*";
      c.AdvanceN(2);
      while (!c.AtEnd()) {
        if (c.Peek() == '*' && c.Peek(1) == '/') {
          tok.text += "*/";
          c.AdvanceN(2);
          break;
        }
        tok.text.push_back(c.Peek());
        c.Advance();
      }
      tok.end_line = c.line;
      result.comments.push_back(std::move(tok));
      continue;
    }
    if (IsIdentStart(ch)) {
      std::string ident;
      while (!c.AtEnd() && IsIdentChar(c.Peek())) {
        ident.push_back(c.Peek());
        c.Advance();
      }
      if (c.Peek() == '"' && IsRawStringPrefix(ident)) {
        tok.kind = TokKind::kString;
        tok.text = ident;
        LexRawString(c, tok.text);
        tok.end_line = c.line;
        result.code.push_back(std::move(tok));
        continue;
      }
      if ((c.Peek() == '"' || c.Peek() == '\'') && IsLiteralPrefix(ident)) {
        tok.kind = c.Peek() == '"' ? TokKind::kString : TokKind::kChar;
        tok.text = ident;
        LexEscapedLiteral(c, c.Peek(), tok.text);
        tok.end_line = c.line;
        result.code.push_back(std::move(tok));
        continue;
      }
      tok.kind = TokKind::kIdent;
      tok.text = std::move(ident);
      tok.end_line = c.line;
      result.code.push_back(std::move(tok));
      continue;
    }
    if (IsDigit(ch) || (ch == '.' && IsDigit(c.Peek(1)))) {
      tok.kind = TokKind::kNumber;
      LexNumber(c, tok.text);
      tok.end_line = c.line;
      result.code.push_back(std::move(tok));
      continue;
    }
    if (ch == '"') {
      tok.kind = TokKind::kString;
      LexEscapedLiteral(c, '"', tok.text);
      tok.end_line = c.line;
      result.code.push_back(std::move(tok));
      continue;
    }
    if (ch == '\'') {
      tok.kind = TokKind::kChar;
      LexEscapedLiteral(c, '\'', tok.text);
      tok.end_line = c.line;
      result.code.push_back(std::move(tok));
      continue;
    }
    tok.kind = TokKind::kPunct;
    if (ch == '.' && c.Peek(1) == '.' && c.Peek(2) == '.') {
      tok.text = "...";
      c.AdvanceN(3);
    } else if (ch == '\\' && (c.Peek(1) == '\n' ||
                              (c.Peek(1) == '\r' && c.Peek(2) == '\n'))) {
      c.AdvanceN(c.Peek(1) == '\r' ? 3 : 2);  // line continuation
      continue;
    } else {
      tok.text.assign(1, ch);
      c.Advance();
    }
    tok.end_line = c.line;
    result.code.push_back(std::move(tok));
  }
  return result;
}

}  // namespace ipscope::lint
