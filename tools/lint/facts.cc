#include "facts.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "token_util.h"

namespace ipscope::lint {
namespace {

bool EndsWithUnderscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

// --- includes ---------------------------------------------------------------

void ExtractIncludes(const Tokens& toks, FileFacts& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsPunct(toks[i], "#") || !IsIdent(toks[i + 1], "include") ||
        toks[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& lit = toks[i + 2].text;
    if (lit.size() < 2) continue;
    out.includes.push_back(FileFacts::Include{
        lit.substr(1, lit.size() - 2), toks[i].line, toks[i].col});
  }
}

// --- Result-returning declarations ------------------------------------------

void ExtractResultFns(const Tokens& toks, FileFacts& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "Result") || !IsPunct(toks[i + 1], "<")) continue;
    std::size_t j = SkipTemplateArgs(toks, i + 1);
    if (j == i + 1) continue;  // imbalanced
    // Declarator: `[ns ::]* name (` — record the identifier directly
    // before the parameter list. Anything else (a variable, a template
    // argument, `return Result<..>(..)`) is not a function declaration.
    std::string last_ident;
    std::size_t k = j;
    while (k < toks.size()) {
      if (toks[k].kind == TokKind::kIdent) {
        last_ident = toks[k].text;
        ++k;
        continue;
      }
      if (k + 1 < toks.size() && IsPunct(toks[k], ":") &&
          IsPunct(toks[k + 1], ":")) {
        k += 2;
        continue;
      }
      break;
    }
    if (last_ident.empty() || k >= toks.size() || !IsPunct(toks[k], "(")) {
      continue;
    }
    out.result_fns.push_back(FileFacts::ResultFn{last_ident, toks[i].line});
  }
}

// --- statement-position (discarded) calls -----------------------------------

void ExtractDiscardedCalls(const Tokens& toks, FileFacts& out) {
  static const std::set<std::string> kNotCalls = {
      "if",     "for",    "while",  "switch",   "return", "catch",
      "sizeof", "alignof", "new",   "delete",   "throw",  "static_assert",
      "case",   "co_await", "co_return", "co_yield", "decltype"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    if (kNotCalls.count(toks[i].text)) continue;
    std::size_t start = CallExprStart(toks, i);
    bool discarded =
        start == 0 || IsPunct(toks[start - 1], ";") ||
        IsPunct(toks[start - 1], "{") || IsPunct(toks[start - 1], "}") ||
        IsIdent(toks[start - 1], "else") || IsIdent(toks[start - 1], "do");
    if (!discarded) continue;
    // The statement must END at the call too: `Foo(x).value();` discards
    // Foo's result only through the chain — the chained member call is the
    // one in statement position, and it is the one recorded (its own name
    // simply won't be in the Result symbol table unless it also returns
    // one). But `Foo(x) + g;` or `Foo(x)->field = v;` consume the value:
    // require the token after the call's closing paren to be ';'.
    int depth = 0;
    std::size_t close = i + 1;
    for (; close < toks.size(); ++close) {
      if (IsPunct(toks[close], "(")) ++depth;
      if (IsPunct(toks[close], ")")) {
        --depth;
        if (depth == 0) break;
      }
    }
    if (close + 1 >= toks.size() || !IsPunct(toks[close + 1], ";")) continue;
    out.discarded_calls.push_back(
        FileFacts::DiscardedCall{toks[i].text, toks[i].line, toks[i].col});
  }
}

// --- fork-unsafe primitives -------------------------------------------------

void ExtractPrimitives(const Tokens& toks, FileFacts& out) {
  static const std::set<std::string> kThread = {"thread", "jthread", "async"};
  static const std::set<std::string> kMutex = {
      "mutex",       "shared_mutex",         "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "shared_timed_mutex",
      "condition_variable", "condition_variable_any"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (kThread.count(t.text) && StdQualified(toks, i)) {
      out.primitives.push_back(FileFacts::Primitive{
          "thread", "std::" + t.text, t.line, t.col});
      continue;
    }
    if (kMutex.count(t.text) && StdQualified(toks, i)) {
      out.primitives.push_back(FileFacts::Primitive{
          "mutex", "std::" + t.text, t.line, t.col});
      continue;
    }
    if (t.text == "ParallelFor" || t.text == "ParallelReduce") {
      out.primitives.push_back(
          FileFacts::Primitive{"pool", t.text, t.line, t.col});
      continue;
    }
    // Any reference into the par namespace counts: the pool's worker
    // threads existing at fork time is exactly the hazard.
    if (t.text == "par" && i + 3 < toks.size() && IsPunct(toks[i + 1], ":") &&
        IsPunct(toks[i + 2], ":") && toks[i + 3].kind == TokKind::kIdent) {
      out.primitives.push_back(FileFacts::Primitive{
          "pool", "par::" + toks[i + 3].text, t.line, t.col});
    }
  }
}

// --- guards: annotations ----------------------------------------------------

// Parses `guards: <ident>` out of a comment's text; returns the mutex name
// or empty.
std::string GuardsMutexIn(const std::string& text) {
  const std::string kKey = "guards:";
  std::size_t at = text.find(kKey);
  if (at == std::string::npos) return {};
  std::size_t p = at + kKey.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  std::size_t first = p;
  while (p < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[p])) ||
          text[p] == '_')) {
    ++p;
  }
  return text.substr(first, p - first);
}

// The declared field on `decl_line`: the last identifier before the
// first `;`, `=`, `{`, or `[` among that line's code tokens, skipping
// template argument lists (`std::vector<Entry> lru;` → "lru").
std::string FieldDeclaredOn(const Tokens& toks, int decl_line) {
  std::string field;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line != decl_line) continue;
    if (IsPunct(toks[i], "<")) {
      std::size_t j = SkipTemplateArgs(toks, i);
      if (j != i) {
        i = j - 1;
        continue;
      }
    }
    if (IsPunct(toks[i], ";") || IsPunct(toks[i], "=") ||
        IsPunct(toks[i], "{") || IsPunct(toks[i], "[")) {
      break;
    }
    if (toks[i].kind == TokKind::kIdent) field = toks[i].text;
  }
  return field;
}

void ExtractGuards(const LexResult& lexed, FileFacts& out) {
  std::set<int> code_lines;
  for (const Token& t : lexed.code) {
    for (int l = t.line; l <= t.end_line; ++l) code_lines.insert(l);
  }
  for (const Token& c : lexed.comments) {
    std::string mutex = GuardsMutexIn(c.text);
    if (mutex.empty()) continue;
    int decl_line = 0;
    if (code_lines.count(c.line)) {
      decl_line = c.line;  // trailing comment annotates its own line
    } else {
      auto it = code_lines.upper_bound(c.end_line);
      if (it == code_lines.end()) continue;
      decl_line = *it;  // standalone comment annotates the next code line
    }
    std::string field = FieldDeclaredOn(lexed.code, decl_line);
    if (field.empty()) continue;
    out.guards.push_back(
        FileFacts::GuardAnnotation{field, mutex, decl_line, c.line});
  }
}

// --- field touches under lock tracking --------------------------------------

void ExtractTouches(const Tokens& toks, FileFacts& out) {
  static const std::set<std::string> kRaiiGuards = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  struct ActiveLock {
    int depth;
    std::string mutex;
  };
  std::vector<ActiveLock> held;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    // RAII guard declaration: `std::lock_guard<std::mutex> name(expr, ...)`
    // (or brace-init). The guarded mutex of each argument is the last
    // identifier of that argument expression (`shard.mu` → "mu").
    if (kRaiiGuards.count(t.text)) {
      std::size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        std::size_t skipped = SkipTemplateArgs(toks, j);
        if (skipped != j) j = skipped;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        ++j;  // the guard variable's name
        if (j < toks.size() && (IsPunct(toks[j], "(") || IsPunct(toks[j], "{"))) {
          const char* close = IsPunct(toks[j], "(") ? ")" : "}";
          const char* open = toks[j].text.c_str();
          int pd = 0;
          std::string last_ident;
          for (std::size_t k = j; k < toks.size(); ++k) {
            if (IsPunct(toks[k], open)) ++pd;
            if (IsPunct(toks[k], close)) {
              --pd;
              if (pd == 0) {
                if (!last_ident.empty()) {
                  held.push_back(ActiveLock{depth, last_ident});
                }
                i = k;
                break;
              }
            }
            if (pd == 1 && IsPunct(toks[k], ",")) {
              if (!last_ident.empty()) {
                held.push_back(ActiveLock{depth, last_ident});
              }
              last_ident.clear();
              continue;
            }
            if (toks[k].kind == TokKind::kIdent) last_ident = toks[k].text;
          }
          continue;
        }
      }
    }

    // Field-shaped touch: trailing '_' or accessed through `.`/`->`, not
    // itself a call or brace-init (`field_(args)` in a constructor's
    // member-initializer list, `Method(` calls).
    bool member_access =
        (i >= 1 && IsPunct(toks[i - 1], ".")) ||
        (i >= 2 && IsPunct(toks[i - 1], ">") && IsPunct(toks[i - 2], "-"));
    if (!EndsWithUnderscore(t.text) && !member_access) continue;
    if (i + 1 < toks.size() &&
        (IsPunct(toks[i + 1], "(") || IsPunct(toks[i + 1], "{"))) {
      continue;
    }
    // `X::y` is a type/static context, not a field touch.
    if (i + 2 < toks.size() && IsPunct(toks[i + 1], ":") &&
        IsPunct(toks[i + 2], ":")) {
      continue;
    }
    FileFacts::FieldTouch touch{t.text, t.line, t.col, {}};
    for (const ActiveLock& l : held) touch.held.push_back(l.mutex);
    std::sort(touch.held.begin(), touch.held.end());
    touch.held.erase(std::unique(touch.held.begin(), touch.held.end()),
                     touch.held.end());
    out.touches.push_back(std::move(touch));
  }
}

}  // namespace

FileFacts ExtractFacts(const LexResult& lexed) {
  FileFacts out;
  ExtractIncludes(lexed.code, out);
  ExtractResultFns(lexed.code, out);
  ExtractDiscardedCalls(lexed.code, out);
  ExtractPrimitives(lexed.code, out);
  ExtractGuards(lexed, out);
  ExtractTouches(lexed.code, out);
  return out;
}

}  // namespace ipscope::lint
