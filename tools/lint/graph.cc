#include "graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace ipscope::lint {
namespace {

// ---------------------------------------------------------------------------
// The declared module layering (DESIGN §4.15). Same-layer includes are
// legal; an include into a strictly higher layer is layering.illegal-dep.
// Modules absent from the table are exempt from the layer check but still
// participate in cycle detection.

struct LayerEntry {
  const char* module;
  int layer;
};

constexpr LayerEntry kLayers[] = {
    // layer 0 — foundation: dependency-free leaves everything may use.
    {"netbase", 0},
    {"rng", 0},
    {"timeutil", 0},
    {"stats", 0},
    {"io.base", 0},
    // layer 1 — infra: observability and the thread pool.
    {"obs", 1},
    {"par", 1},
    // layer 2 — data: stores, generators, measurement domains.
    {"io", 2},
    {"activity", 2},
    {"fault", 2},
    {"geo", 2},
    {"sim", 2},
    {"cdn", 2},
    {"bgp", 2},
    {"scan", 2},
    {"rdns", 2},
    {"whois", 2},
    {"baseline", 2},
    {"measurement", 2},
    {"security", 2},
    // layer 3 — analysis: consumes data, produces results.
    {"report", 3},
    {"analysis", 3},
    {"check", 3},
    // layer 4 — services: entry points; nothing may depend on them.
    {"ingest", 4},
    {"serve", 4},
    {"cli", 4},
};

constexpr const char* kLayerNames[] = {"foundation", "infra", "data",
                                       "analysis", "services"};

// src/io basenames that form the virtual foundation module "io.base":
// dependency-free primitives documented to sit below obs (atomic_file.h),
// which everything — including obs itself — may include without creating
// an obs <-> io cycle.
bool IsIoBaseBasename(std::string_view base) {
  static const char* const kBase[] = {
      "atomic_file.h", "atomic_file.cc", "crc32c.h",      "crc32c.cc",
      "result.h",      "store_error.h",  "store_error.cc"};
  for (const char* b : kBase) {
    if (base == b) return true;
  }
  return false;
}

std::string LayerLabel(int layer) {
  if (layer < 0 || layer > 4) return "unlayered";
  return kLayerNames[layer];
}

// ---------------------------------------------------------------------------
// Shared pass context

struct Edge {
  std::string report_path;  // file containing the include
  int line = 0;
  int col = 0;
  std::string target;  // the include string as written
};

struct Ctx {
  const std::vector<ProjectFile>& files;
  std::map<std::string, const ProjectFile*> by_logical;
  std::map<std::string, const ProjectFile*> by_report;
  ProjectAnalysis out;

  explicit Ctx(const std::vector<ProjectFile>& f) : files(f) {
    for (const ProjectFile& pf : files) {
      by_logical.emplace(pf.logical_path, &pf);
      by_report.emplace(pf.report_path, &pf);
    }
  }

  // Phase-2 suppressions live in the finding's anchor file, on the anchor
  // line, with the rule's tag — the same contract as phase 1.
  bool Suppressed(const Finding& f, std::string_view tag) const {
    auto it = by_report.find(f.path);
    if (it == by_report.end()) return false;
    for (const SuppressionRecord& s : it->second->suppressions) {
      if (s.applies_line == f.line && s.tag == tag) return true;
    }
    return false;
  }

  void Emit(Finding f, std::string_view tag) {
    if (Suppressed(f, tag)) {
      ++out.suppressions_used;
    } else {
      out.findings.push_back(std::move(f));
    }
  }
};

// Resolves an include string to the logical path it names: quoted
// includes are rooted at src/ by project convention ("obs/registry.h" ->
// "src/obs/registry.h").
std::string IncludeLogicalPath(const std::string& target) {
  return "src/" + target;
}

// ---------------------------------------------------------------------------
// Pass: layering.illegal-dep

void PassIllegalDep(Ctx& ctx) {
  for (const ProjectFile& pf : ctx.files) {
    std::string mod = ModuleOfPath(pf.logical_path);
    if (mod.empty()) continue;
    int layer = LayerOfModule(mod);
    if (layer < 0) continue;
    for (const FileFacts::Include& inc : pf.facts.includes) {
      std::string tlogical = IncludeLogicalPath(inc.target);
      std::string tmod = ModuleOfPath(tlogical);
      if (tmod.empty() || tmod == mod) continue;
      int tlayer = LayerOfModule(tmod);
      if (tlayer < 0 || tlayer <= layer) continue;
      Finding f;
      f.rule = "layering.illegal-dep";
      f.path = pf.report_path;
      f.line = inc.line;
      f.col = inc.col;
      f.message = "module '" + mod + "' (" + LayerLabel(layer) +
                  ") includes \"" + inc.target + "\" from '" + tmod + "' (" +
                  LayerLabel(tlayer) +
                  "): dependencies must point at same-or-lower layers";
      auto it = ctx.by_logical.find(tlogical);
      f.related.push_back(RelatedLocation{
          it != ctx.by_logical.end() ? it->second->report_path : tlogical, 1,
          "included file, module '" + tmod + "'"});
      ctx.Emit(std::move(f), "layer");
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: layering.cycle

// Tarjan strongly-connected components over the module graph. Module
// count is tiny (tens), so recursion depth is bounded.
struct SccFinder {
  const std::map<std::string, std::set<std::string>>& adj;
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next = 0;
  std::vector<std::vector<std::string>> sccs;

  void Visit(const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = adj.find(v);
    if (it != adj.end()) {
      for (const std::string& w : it->second) {
        if (!index.count(w)) {
          Visit(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w)) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      for (;;) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

void PassCycle(Ctx& ctx) {
  // Module graph with one representative include edge per module pair
  // (first by report_path then line, for deterministic anchoring).
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, Edge> rep;
  std::vector<const ProjectFile*> ordered;
  for (const ProjectFile& pf : ctx.files) ordered.push_back(&pf);
  std::sort(ordered.begin(), ordered.end(),
            [](const ProjectFile* a, const ProjectFile* b) {
              return a->report_path < b->report_path;
            });
  for (const ProjectFile* pf : ordered) {
    std::string mod = ModuleOfPath(pf->logical_path);
    if (mod.empty()) continue;
    for (const FileFacts::Include& inc : pf->facts.includes) {
      std::string tmod = ModuleOfPath(IncludeLogicalPath(inc.target));
      if (tmod.empty() || tmod == mod) continue;
      adj[mod].insert(tmod);
      rep.emplace(std::make_pair(mod, tmod),
                  Edge{pf->report_path, inc.line, inc.col, inc.target});
    }
  }

  SccFinder scc{adj, {}, {}, {}, {}, 0, {}};
  for (const auto& [mod, targets] : adj) {
    (void)targets;
    if (!scc.index.count(mod)) scc.Visit(mod);
  }

  for (std::vector<std::string>& comp : scc.sccs) {
    if (comp.size() < 2) continue;  // self-includes are filtered above
    std::sort(comp.begin(), comp.end());
    const std::string& anchor_mod = comp[0];
    std::set<std::string> members(comp.begin(), comp.end());

    // Shortest cycle through the lexicographically-smallest module, by
    // BFS restricted to the component.
    std::map<std::string, std::string> parent;
    std::vector<std::string> frontier = {anchor_mod};
    std::string back_from;  // the node whose edge closes the cycle
    while (back_from.empty() && !frontier.empty()) {
      std::vector<std::string> nxt;
      for (const std::string& v : frontier) {
        auto it = adj.find(v);
        if (it == adj.end()) continue;
        for (const std::string& w : it->second) {
          if (!members.count(w)) continue;
          if (w == anchor_mod) {
            back_from = v;
            break;
          }
          if (!parent.count(w)) {
            parent[w] = v;
            nxt.push_back(w);
          }
        }
        if (!back_from.empty()) break;
      }
      frontier = std::move(nxt);
    }
    if (back_from.empty()) continue;  // unreachable for a true SCC

    std::vector<std::string> path;  // anchor -> ... -> back_from
    for (std::string v = back_from; v != anchor_mod; v = parent[v]) {
      path.push_back(v);
    }
    path.push_back(anchor_mod);
    std::reverse(path.begin(), path.end());
    path.push_back(anchor_mod);  // close the loop for edge iteration

    std::string chain = path[0];
    for (std::size_t i = 1; i < path.size(); ++i) {
      chain += " -> " + path[i];
    }

    const Edge& first = rep.at(std::make_pair(path[0], path[1]));
    Finding f;
    f.rule = "layering.cycle";
    f.path = first.report_path;
    f.line = first.line;
    f.col = first.col;
    f.message = "module include cycle: " + chain +
                "; the module graph must stay a DAG (full chain in "
                "related locations)";
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Edge& e = rep.at(std::make_pair(path[i], path[i + 1]));
      f.related.push_back(RelatedLocation{
          e.report_path, e.line,
          "includes \"" + e.target + "\" (" + path[i] + " -> " +
              path[i + 1] + ")"});
    }
    ctx.Emit(std::move(f), "layer");
  }
}

// ---------------------------------------------------------------------------
// Pass: concurrency.fork-unsafe

void PassForkUnsafe(Ctx& ctx) {
  std::vector<const ProjectFile*> roots;
  for (const ProjectFile& pf : ctx.files) {
    if (ModuleOfPath(pf.logical_path) == "ingest") roots.push_back(&pf);
  }
  std::sort(roots.begin(), roots.end(),
            [](const ProjectFile* a, const ProjectFile* b) {
              return a->report_path < b->report_path;
            });

  for (const ProjectFile* root : roots) {
    // Primitives used directly in the ingest file anchor at themselves.
    for (const FileFacts::Primitive& p : root->facts.primitives) {
      Finding f;
      f.rule = "concurrency.fork-unsafe";
      f.path = root->report_path;
      f.line = p.line;
      f.col = p.col;
      f.message = "fork-unsafe " + p.kind + " primitive '" + p.token +
                  "' in src/ingest: chaos-crash forks ingest processes, "
                  "and locks/threads do not survive fork()";
      ctx.Emit(std::move(f), "fork");
    }

    // BFS over the quoted-include closure. A chain step is (file that
    // includes, line, target); findings anchor at the root's own include
    // line (chain[0]) so the suppression lives where the dependency is
    // chosen.
    struct Item {
      std::string logical;
      std::vector<Edge> chain;
    };
    std::set<std::string> visited{root->logical_path};
    std::set<std::string> flagged;  // hazard files already reported
    std::vector<Item> frontier;
    for (const FileFacts::Include& inc : root->facts.includes) {
      Edge e{root->report_path, inc.line, inc.col, inc.target};
      frontier.push_back(Item{IncludeLogicalPath(inc.target), {e}});
    }
    while (!frontier.empty()) {
      std::vector<Item> nxt;
      for (Item& item : frontier) {
        std::string mod = ModuleOfPath(item.logical);
        auto it = ctx.by_logical.find(item.logical);
        std::string hazard_path = it != ctx.by_logical.end()
                                      ? it->second->report_path
                                      : item.logical;
        auto chain_related = [&item, &hazard_path]() {
          std::vector<RelatedLocation> rel;
          for (std::size_t i = 0; i < item.chain.size(); ++i) {
            rel.push_back(RelatedLocation{
                item.chain[i].report_path, item.chain[i].line,
                "includes \"" + item.chain[i].target + "\""});
          }
          rel.push_back(RelatedLocation{hazard_path, 1, "reached file"});
          return rel;
        };
        if (mod == "par") {
          if (flagged.insert(item.logical).second) {
            Finding f;
            f.rule = "concurrency.fork-unsafe";
            f.path = item.chain.front().report_path;
            f.line = item.chain.front().line;
            f.col = item.chain.front().col;
            f.message = "src/ingest reaches the thread-pool module 'par' "
                        "(via \"" +
                        item.chain.back().target +
                        "\"): chaos-crash forks ingest processes, and pool "
                        "worker threads do not survive fork()";
            f.related = chain_related();
            ctx.Emit(std::move(f), "fork");
          }
          continue;  // do not traverse into par
        }
        if (it == ctx.by_logical.end()) continue;  // outside the project
        const ProjectFile& reached = *it->second;
        if (&reached != root && !reached.facts.primitives.empty() &&
            flagged.insert(item.logical).second) {
          const FileFacts::Primitive& p = reached.facts.primitives.front();
          Finding f;
          f.rule = "concurrency.fork-unsafe";
          f.path = item.chain.front().report_path;
          f.line = item.chain.front().line;
          f.col = item.chain.front().col;
          f.message = "src/ingest reaches fork-unsafe " + p.kind +
                      " primitive '" + p.token + "' (" + hazard_path + ":" +
                      std::to_string(p.line) +
                      "): chaos-crash forks ingest processes, and "
                      "locks/threads do not survive fork()";
          f.related = chain_related();
          f.related.back().message =
              "uses '" + p.token + "' here";
          f.related.back().line = p.line;
          ctx.Emit(std::move(f), "fork");
        }
        if (!visited.insert(item.logical).second) continue;
        for (const FileFacts::Include& inc : reached.facts.includes) {
          Item deeper = item;
          deeper.logical = IncludeLogicalPath(inc.target);
          deeper.chain.push_back(
              Edge{reached.report_path, inc.line, inc.col, inc.target});
          nxt.push_back(std::move(deeper));
        }
      }
      frontier = std::move(nxt);
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: errors.discarded-result

void PassDiscardedResult(Ctx& ctx) {
  // Cross-TU symbol table: function name -> first declaration site (by
  // path then line, for a deterministic related location). Only HEADER
  // declarations are visible project-wide — a Result-returning helper
  // declared inside a .cc is TU-local, so it only shadows calls in its
  // own file (otherwise an unrelated same-named function in another TU
  // would be flagged).
  auto is_header = [](const std::string& p) {
    auto ends = [&p](std::string_view s) {
      return p.size() >= s.size() &&
             std::string_view(p).substr(p.size() - s.size()) == s;
    };
    return ends(".h") || ends(".hpp");
  };
  std::map<std::string, RelatedLocation> table;
  std::vector<const ProjectFile*> ordered;
  for (const ProjectFile& pf : ctx.files) ordered.push_back(&pf);
  std::sort(ordered.begin(), ordered.end(),
            [](const ProjectFile* a, const ProjectFile* b) {
              return a->report_path < b->report_path;
            });
  for (const ProjectFile* pf : ordered) {
    if (!is_header(pf->logical_path)) continue;
    for (const FileFacts::ResultFn& fn : pf->facts.result_fns) {
      table.emplace(fn.name,
                    RelatedLocation{pf->report_path, fn.line,
                                    "'" + fn.name +
                                        "' declared returning Result here"});
    }
  }

  for (const ProjectFile& pf : ctx.files) {
    // TU-local declarations from this very file participate too.
    std::map<std::string, RelatedLocation> local;
    if (!is_header(pf.logical_path)) {
      for (const FileFacts::ResultFn& fn : pf.facts.result_fns) {
        local.emplace(fn.name,
                      RelatedLocation{pf.report_path, fn.line,
                                      "'" + fn.name +
                                          "' declared returning Result "
                                          "here"});
      }
    }
    for (const FileFacts::DiscardedCall& call : pf.facts.discarded_calls) {
      const RelatedLocation* decl = nullptr;
      if (auto lit = local.find(call.name); lit != local.end()) {
        decl = &lit->second;
      } else if (auto git = table.find(call.name); git != table.end()) {
        decl = &git->second;
      }
      if (decl == nullptr) continue;
      Finding f;
      f.rule = "errors.discarded-result";
      f.path = pf.report_path;
      f.line = call.line;
      f.col = call.col;
      f.message = "call to '" + call.name +
                  "' discards its ipscope::Result value; check .ok() / "
                  "propagate the error, or cast to (void) with a "
                  "justification";
      f.related.push_back(*decl);
      ctx.Emit(std::move(f), "result");
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: concurrency.guarded-by

void PassGuardedBy(Ctx& ctx) {
  // Annotations resolve module-wide: the header that declares
  // `std::vector<Entry> lru;  // guards: mu` covers the .cc that touches
  // it. Group by module, first annotation per field wins (deterministic
  // by path order).
  struct Annotation {
    std::string mutex;
    std::string decl_path;
    int decl_line = 0;
  };
  std::map<std::string, std::vector<const ProjectFile*>> modules;
  for (const ProjectFile& pf : ctx.files) {
    std::string mod = ModuleOfPath(pf.logical_path);
    if (!mod.empty()) modules[mod].push_back(&pf);
  }
  for (auto& [mod, members] : modules) {
    (void)mod;
    std::sort(members.begin(), members.end(),
              [](const ProjectFile* a, const ProjectFile* b) {
                return a->report_path < b->report_path;
              });
    std::map<std::string, Annotation> guarded;
    for (const ProjectFile* pf : members) {
      for (const FileFacts::GuardAnnotation& g : pf->facts.guards) {
        guarded.emplace(g.field, Annotation{g.mutex, pf->report_path,
                                            g.decl_line});
      }
    }
    if (guarded.empty()) continue;
    for (const ProjectFile* pf : members) {
      for (const FileFacts::FieldTouch& touch : pf->facts.touches) {
        auto it = guarded.find(touch.field);
        if (it == guarded.end()) continue;
        const Annotation& ann = it->second;
        // The declaration itself is not a touch.
        if (ann.decl_path == pf->report_path && ann.decl_line == touch.line) {
          continue;
        }
        if (std::find(touch.held.begin(), touch.held.end(), ann.mutex) !=
            touch.held.end()) {
          continue;
        }
        Finding f;
        f.rule = "concurrency.guarded-by";
        f.path = pf->report_path;
        f.line = touch.line;
        f.col = touch.col;
        f.message = "field '" + touch.field + "' is guarded by '" +
                    ann.mutex + "' but touched without holding it" +
                    (touch.held.empty()
                         ? std::string(" (no lock held)")
                         : " (held: " + [&touch] {
                             std::string h;
                             for (const std::string& m : touch.held) {
                               if (!h.empty()) h += ", ";
                               h += m;
                             }
                             return h;
                           }() + ")");
        f.related.push_back(RelatedLocation{
            ann.decl_path, ann.decl_line,
            "'" + touch.field + "' annotated `// guards: " + ann.mutex +
                "` here"});
        ctx.Emit(std::move(f), "guard");
      }
    }
  }
}

}  // namespace

std::string ModuleOfPath(std::string_view path) {
  constexpr std::string_view kSrc = "src/";
  if (path.substr(0, kSrc.size()) != kSrc) return {};
  std::string_view rest = path.substr(kSrc.size());
  std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};  // file at src/ root
  std::string_view mod = rest.substr(0, slash);
  if (mod == "io") {
    std::string_view base = rest.substr(rest.rfind('/') + 1);
    if (IsIoBaseBasename(base)) return "io.base";
  }
  return std::string(mod);
}

int LayerOfModule(std::string_view module) {
  for (const LayerEntry& e : kLayers) {
    if (module == e.module) return e.layer;
  }
  return -1;
}

ProjectAnalysis AnalyzeProject(const std::vector<ProjectFile>& files) {
  Ctx ctx(files);
  PassIllegalDep(ctx);
  PassCycle(ctx);
  PassForkUnsafe(ctx);
  PassDiscardedResult(ctx);
  PassGuardedBy(ctx);
  return std::move(ctx.out);
}

}  // namespace ipscope::lint
