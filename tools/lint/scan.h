// Tree walking, the two-phase scan driver, and the self-test harness for
// ipscope_lint.
//
// A scan is: phase 1 per file (rules.h findings + FileFacts, optionally
// served from the CRC32C cache in cache.h), then phase 2 once over all
// facts (graph.h). The project for phase 2 is exactly the scanned file
// set — the full tree for ScanTree, the explicit list for ScanFiles, the
// corpus for the self-test.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rules.h"

namespace ipscope::lint {

struct ScanOptions {
  // Phase-1 cache directory (e.g. build/lint-cache); empty disables
  // caching. See cache.h for the invalidation rules.
  std::string cache_dir;
};

struct ScanResult {
  std::vector<Finding> findings;  // unsuppressed, ordered by path then line
  int files_scanned = 0;
  int suppressions_used = 0;
  int cache_hits = 0;    // phase-1 analyses served from the cache
  int facts_cached = 0;  // phase-1 analyses extracted and written this run
};

// Scans every .cc/.cpp/.h/.hpp under root/{src,tools,bench,tests,examples},
// skipping tests/lint_corpus (the committed violation corpus must never
// fail the tree gate). Paths are reported relative to root, sorted.
ScanResult ScanTree(const std::string& root, const ScanOptions& opts = {});

// Scans an explicit list of files; each path is classified by its path
// relative to root (or used verbatim when already relative).
ScanResult ScanFiles(const std::string& root,
                     const std::vector<std::string>& paths,
                     const ScanOptions& opts = {});

// Runs the analyzer against the committed violation corpus and its
// expected-findings manifest. Proves, for every rule in the catalogue:
//   * the rule FIRES: <slug>.bad.* produces exactly the manifest findings;
//   * the rule stays QUIET: <slug>.good.* (the clean twin) produces none.
// Any missed finding, spurious finding, or missing corpus file is printed
// to `os`. Returns 0 on success, 1 on any mismatch.
//
// Corpus files declare their pretended tree location on line 1
// (`// lint-corpus-as: src/analysis/x.cc`) so layer-scoped rules apply.
// The whole corpus then runs through the phase-2 passes as ONE project
// (under the pseudo-paths), which is how the cross-file rules fire;
// helper files beyond the bad/good twins may participate in a chain as
// long as they themselves stay finding-free.
int RunSelfTest(const std::string& corpus_dir, std::ostream& os);

}  // namespace ipscope::lint
