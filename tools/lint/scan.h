// Tree walking and the self-test harness for ipscope_lint.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rules.h"

namespace ipscope::lint {

struct ScanResult {
  std::vector<Finding> findings;  // unsuppressed, ordered by path then line
  int files_scanned = 0;
  int suppressions_used = 0;
};

// Scans every .cc/.cpp/.h/.hpp under root/{src,tools,bench,tests,examples},
// skipping tests/lint_corpus (the committed violation corpus must never
// fail the tree gate). Paths are reported relative to root, sorted.
ScanResult ScanTree(const std::string& root);

// Scans an explicit list of files; each path is classified by its path
// relative to root (or used verbatim when already relative).
ScanResult ScanFiles(const std::string& root,
                     const std::vector<std::string>& paths);

// Runs the analyzer against the committed violation corpus and its
// expected-findings manifest. Proves, for every rule in the catalogue:
//   * the rule FIRES: <slug>.bad.* produces exactly the manifest findings;
//   * the rule stays QUIET: <slug>.good.* (the clean twin) produces none.
// Any missed finding, spurious finding, or missing corpus file is printed
// to `os`. Returns 0 on success, 1 on any mismatch.
//
// Corpus files declare their pretended tree location on line 1
// (`// lint-corpus-as: src/analysis/x.cc`) so layer-scoped rules apply.
int RunSelfTest(const std::string& corpus_dir, std::ostream& os);

}  // namespace ipscope::lint
