#include "cache.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/crc32c.h"

namespace ipscope::lint {
namespace {

namespace fs = std::filesystem;

// Bump when the serialization below changes shape; the rule-catalogue
// size rides along so adding a rule invalidates every entry.
constexpr int kFormatVersion = 2;

// Fields are tab-separated; encode the three bytes that would break the
// framing (plus '%' itself).
std::string Enc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == '\t' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool HexVal(char c, unsigned& v) {
  if (c >= '0' && c <= '9') {
    v = static_cast<unsigned>(c - '0');
    return true;
  }
  if (c >= 'a' && c <= 'f') {
    v = static_cast<unsigned>(c - 'a' + 10);
    return true;
  }
  return false;
}

bool Dec(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    unsigned hi = 0, lo = 0;
    if (i + 2 >= s.size() || !HexVal(s[i + 1], hi) || !HexVal(s[i + 2], lo)) {
      return false;
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

template <typename Int>
bool ParseInt(const std::string& s, Int& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::string EntryPath(const std::string& dir, const std::string& rel_path) {
  char name[16];
  std::snprintf(name, sizeof(name), "%08x",
                io::Crc32c(rel_path.data(), rel_path.size()));
  return dir + "/" + name + ".facts";
}

}  // namespace

std::uint32_t ContentCrc(std::string_view content) {
  return io::Crc32c(content.data(), content.size());
}

FactsCache::FactsCache(std::string dir) : dir_(std::move(dir)) {}

bool FactsCache::Load(const std::string& rel_path, std::uint32_t content_crc,
                      FileAnalysis& out) const {
  if (!enabled()) return false;
  std::ifstream in(EntryPath(dir_, rel_path), std::ios::binary);
  if (!in) return false;

  FileAnalysis fa;
  bool saw_end = false;
  int state_checked = 0;  // header, path, crc all verified
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> f = SplitTabs(line);
    const std::string& kind = f[0];
    if (kind == "ipscope-lint-cache") {
      int version = 0;
      std::size_t nrules = 0;
      if (f.size() != 3 || !ParseInt(f[1], version) ||
          !ParseInt(f[2], nrules) || version != kFormatVersion ||
          nrules != RuleCatalogue().size()) {
        return false;
      }
      ++state_checked;
    } else if (kind == "path") {
      std::string p;
      if (f.size() != 2 || !Dec(f[1], p) || p != rel_path) return false;
      ++state_checked;
    } else if (kind == "crc") {
      std::uint32_t crc = 0;
      if (f.size() != 2 || !ParseInt(f[1], crc) || crc != content_crc) {
        return false;
      }
      ++state_checked;
    } else if (kind == "sup_used") {
      if (f.size() != 2 || !ParseInt(f[1], fa.suppressions_used)) return false;
    } else if (kind == "finding") {
      Finding fd;
      std::size_t nrel = 0;
      if (f.size() != 6 || !Dec(f[4], fd.message) ||
          !ParseInt(f[2], fd.line) || !ParseInt(f[3], fd.col) ||
          !ParseInt(f[5], nrel)) {
        return false;
      }
      fd.rule = f[1];
      fd.path = rel_path;
      for (std::size_t i = 0; i < nrel; ++i) {
        if (!std::getline(in, line)) return false;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::vector<std::string> r = SplitTabs(line);
        RelatedLocation rl;
        if (r.size() != 4 || r[0] != "rel" || !Dec(r[1], rl.path) ||
            !ParseInt(r[2], rl.line) || !Dec(r[3], rl.message)) {
          return false;
        }
        fd.related.push_back(std::move(rl));
      }
      fa.findings.push_back(std::move(fd));
    } else if (kind == "sup") {
      SuppressionRecord s;
      if (f.size() != 3 || !Dec(f[1], s.tag) ||
          !ParseInt(f[2], s.applies_line)) {
        return false;
      }
      fa.suppressions.push_back(std::move(s));
    } else if (kind == "inc") {
      FileFacts::Include v;
      if (f.size() != 4 || !Dec(f[1], v.target) || !ParseInt(f[2], v.line) ||
          !ParseInt(f[3], v.col)) {
        return false;
      }
      fa.facts.includes.push_back(std::move(v));
    } else if (kind == "rfn") {
      FileFacts::ResultFn v;
      if (f.size() != 3 || !Dec(f[1], v.name) || !ParseInt(f[2], v.line)) {
        return false;
      }
      fa.facts.result_fns.push_back(std::move(v));
    } else if (kind == "call") {
      FileFacts::DiscardedCall v;
      if (f.size() != 4 || !Dec(f[1], v.name) || !ParseInt(f[2], v.line) ||
          !ParseInt(f[3], v.col)) {
        return false;
      }
      fa.facts.discarded_calls.push_back(std::move(v));
    } else if (kind == "prim") {
      FileFacts::Primitive v;
      if (f.size() != 5 || !Dec(f[1], v.kind) || !Dec(f[2], v.token) ||
          !ParseInt(f[3], v.line) || !ParseInt(f[4], v.col)) {
        return false;
      }
      fa.facts.primitives.push_back(std::move(v));
    } else if (kind == "guard") {
      FileFacts::GuardAnnotation v;
      if (f.size() != 5 || !Dec(f[1], v.field) || !Dec(f[2], v.mutex) ||
          !ParseInt(f[3], v.decl_line) || !ParseInt(f[4], v.ann_line)) {
        return false;
      }
      fa.facts.guards.push_back(std::move(v));
    } else if (kind == "touch") {
      FileFacts::FieldTouch v;
      std::size_t nheld = 0;
      if (f.size() < 5 || !Dec(f[1], v.field) || !ParseInt(f[2], v.line) ||
          !ParseInt(f[3], v.col) || !ParseInt(f[4], nheld) ||
          f.size() != 5 + nheld) {
        return false;
      }
      for (std::size_t i = 0; i < nheld; ++i) {
        std::string m;
        if (!Dec(f[5 + i], m)) return false;
        v.held.push_back(std::move(m));
      }
      fa.facts.touches.push_back(std::move(v));
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      return false;  // unknown record: future format, treat as miss
    }
  }
  if (!saw_end || state_checked != 3) return false;
  out = std::move(fa);
  return true;
}

void FactsCache::Store(const std::string& rel_path, std::uint32_t content_crc,
                       const FileAnalysis& fa) const {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best-effort; open() reports failure

  std::ostringstream body;
  body << "ipscope-lint-cache\t" << kFormatVersion << "\t"
       << RuleCatalogue().size() << "\n";
  body << "path\t" << Enc(rel_path) << "\n";
  body << "crc\t" << content_crc << "\n";
  body << "sup_used\t" << fa.suppressions_used << "\n";
  for (const Finding& fd : fa.findings) {
    body << "finding\t" << fd.rule << "\t" << fd.line << "\t" << fd.col
         << "\t" << Enc(fd.message) << "\t" << fd.related.size() << "\n";
    for (const RelatedLocation& rl : fd.related) {
      body << "rel\t" << Enc(rl.path) << "\t" << rl.line << "\t"
           << Enc(rl.message) << "\n";
    }
  }
  for (const SuppressionRecord& s : fa.suppressions) {
    body << "sup\t" << Enc(s.tag) << "\t" << s.applies_line << "\n";
  }
  for (const FileFacts::Include& v : fa.facts.includes) {
    body << "inc\t" << Enc(v.target) << "\t" << v.line << "\t" << v.col
         << "\n";
  }
  for (const FileFacts::ResultFn& v : fa.facts.result_fns) {
    body << "rfn\t" << Enc(v.name) << "\t" << v.line << "\n";
  }
  for (const FileFacts::DiscardedCall& v : fa.facts.discarded_calls) {
    body << "call\t" << Enc(v.name) << "\t" << v.line << "\t" << v.col
         << "\n";
  }
  for (const FileFacts::Primitive& v : fa.facts.primitives) {
    body << "prim\t" << Enc(v.kind) << "\t" << Enc(v.token) << "\t" << v.line
         << "\t" << v.col << "\n";
  }
  for (const FileFacts::GuardAnnotation& v : fa.facts.guards) {
    body << "guard\t" << Enc(v.field) << "\t" << Enc(v.mutex) << "\t"
         << v.decl_line << "\t" << v.ann_line << "\n";
  }
  for (const FileFacts::FieldTouch& v : fa.facts.touches) {
    body << "touch\t" << Enc(v.field) << "\t" << v.line << "\t" << v.col
         << "\t" << v.held.size();
    for (const std::string& m : v.held) body << "\t" << Enc(m);
    body << "\n";
  }
  body << "end\n";

  std::ofstream outf(EntryPath(dir_, rel_path),
                     std::ios::binary | std::ios::trunc);
  if (!outf) return;  // read-only cache dir: degrade to cold scans
  outf << body.str();
}

}  // namespace ipscope::lint
