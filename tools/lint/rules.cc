#include "rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "lexer.h"
#include "token_util.h"

namespace ipscope::lint {
namespace {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppression {
  std::string tag;
  std::string justification;
  int comment_line = 0;  // where the comment starts (for diagnostics)
  int applies_line = 0;  // code line it silences
  bool used = false;
};

// Parses every `lint: tag(justification)[, tag(justification)...]` inside
// one comment's text. Malformed clauses are ignored (they simply do not
// suppress anything); an empty justification is reported by the caller.
void ParseSuppressionsInComment(const std::string& text, int comment_line,
                                std::vector<Suppression>& out) {
  std::size_t pos = 0;
  const std::string kKey = "lint:";
  while ((pos = text.find(kKey, pos)) != std::string::npos) {
    std::size_t p = pos + kKey.size();
    pos = p;
    for (;;) {
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
      std::size_t tag_first = p;
      while (p < text.size() &&
             (std::isalpha(static_cast<unsigned char>(text[p])) ||
              text[p] == '-')) {
        ++p;
      }
      if (p == tag_first || p >= text.size() || text[p] != '(') break;
      std::string tag = text.substr(tag_first, p - tag_first);
      ++p;  // '('
      std::size_t close = text.find(')', p);
      if (close == std::string::npos) break;
      Suppression s;
      s.tag = std::move(tag);
      s.justification = text.substr(p, close - p);
      // Trim the justification so "  " does not count as one.
      while (!s.justification.empty() && s.justification.back() == ' ') {
        s.justification.pop_back();
      }
      while (!s.justification.empty() && s.justification.front() == ' ') {
        s.justification.erase(s.justification.begin());
      }
      s.comment_line = comment_line;
      out.push_back(std::move(s));
      p = close + 1;
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
      if (p < text.size() && text[p] == ',') {
        ++p;
        continue;
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule engine (token-shape helpers shared with facts.cc live in
// token_util.h)

struct Engine {
  const FileInfo& info;
  const Tokens& toks;
  std::vector<Finding> raw;  // pre-suppression

  void Report(const char* rule, const Token& at, std::string message) {
    raw.push_back(Finding{rule, info.rel_path, at.line, at.col,
                          std::move(message), {}});
  }

  // --- [determinism] -------------------------------------------------------

  // Names declared with an unordered container type (including through
  // local `using X = std::unordered_map<...>` aliases).
  std::set<std::string> CollectUnorderedNames() const {
    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> aliases;  // type aliases that are unordered
    std::set<std::string> names;    // variables/parameters of those types
    for (std::size_t i = 0; i < toks.size(); ++i) {
      bool direct = toks[i].kind == TokKind::kIdent &&
                    kUnorderedTypes.count(toks[i].text) > 0;
      bool via_alias =
          toks[i].kind == TokKind::kIdent && aliases.count(toks[i].text) > 0;
      if (!direct && !via_alias) continue;
      if (direct) {
        // Look back for `using ALIAS =` (allowing the std:: qualifier).
        std::size_t q = i;
        if (StdQualified(toks, q)) q -= 3;
        if (q >= 2 && IsPunct(toks[q - 1], "=") &&
            toks[q - 2].kind == TokKind::kIdent && q >= 3 &&
            IsIdent(toks[q - 3], "using")) {
          aliases.insert(toks[q - 2].text);
        }
      }
      std::size_t j = i + 1;
      if (direct) {
        if (j >= toks.size() || !IsPunct(toks[j], "<")) continue;
        j = SkipTemplateArgs(toks, j);
        if (j == i + 1) continue;  // imbalanced
      }
      // Declarators: skip cv/ref/ptr noise, then record identifier names
      // (`T a, b;` records both).
      for (;;) {
        while (j < toks.size() &&
               (IsPunct(toks[j], "&") || IsPunct(toks[j], "*") ||
                IsIdent(toks[j], "const"))) {
          ++j;
        }
        if (j >= toks.size() || toks[j].kind != TokKind::kIdent) break;
        // If the candidate is itself followed by an identifier, '<', or
        // '::' it is a type name (e.g. the next parameter's type after a
        // comma), not a declared variable — stop the declarator walk.
        if (j + 1 < toks.size() &&
            (toks[j + 1].kind == TokKind::kIdent ||
             IsPunct(toks[j + 1], "<") || IsPunct(toks[j + 1], ":"))) {
          break;
        }
        names.insert(toks[j].text);
        ++j;
        // Skip an initializer up to ',' or ';' at depth 0.
        int depth = 0;
        while (j < toks.size()) {
          const Token& t = toks[j];
          if (IsPunct(t, "(") || IsPunct(t, "{") || IsPunct(t, "[")) ++depth;
          if (IsPunct(t, ")") || IsPunct(t, "}") || IsPunct(t, "]")) --depth;
          if (depth < 0) break;
          if (depth == 0 && (IsPunct(t, ",") || IsPunct(t, ";"))) break;
          ++j;
        }
        if (j < toks.size() && IsPunct(toks[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    return names;
  }

  void RuleUnorderedIter() {
    if (!info.result_layer) return;
    std::set<std::string> unordered = CollectUnorderedNames();
    if (unordered.empty()) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Range-for whose range expression mentions an unordered name.
      if (IsIdent(toks[i], "for") && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          if (IsPunct(toks[j], "(")) ++depth;
          if (IsPunct(toks[j], ")")) {
            --depth;
            if (depth == 0) {
              close = j;
              break;
            }
          }
          if (depth == 1 && IsPunct(toks[j], ":") &&
              !IsPunct(toks[j - 1], ":") &&
              (j + 1 >= toks.size() || !IsPunct(toks[j + 1], ":"))) {
            colon = j;
          }
        }
        if (colon != 0 && close > colon) {
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].kind == TokKind::kIdent &&
                unordered.count(toks[j].text)) {
              Report("determinism.unordered-iter", toks[i],
                     "range-for over unordered container '" + toks[j].text +
                         "' in a result-producing layer; iteration order is "
                         "hash-dependent");
              break;
            }
          }
        }
      }
      // Explicit iterator walk: name.begin() / name.cbegin().
      if (toks[i].kind == TokKind::kIdent && unordered.count(toks[i].text) &&
          i + 2 < toks.size() && IsPunct(toks[i + 1], ".") &&
          (IsIdent(toks[i + 2], "begin") || IsIdent(toks[i + 2], "cbegin") ||
           IsIdent(toks[i + 2], "rbegin"))) {
        Report("determinism.unordered-iter", toks[i],
               "'" + toks[i].text + "." + toks[i + 2].text +
                   "()' iterates an unordered container in a "
                   "result-producing layer; iteration order is "
                   "hash-dependent");
      }
    }
  }

  void RuleReduce() {
    if (!info.result_layer) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (IsIdent(toks[i], "reduce") && StdQualified(toks, i)) {
        Report("determinism.reduce", toks[i],
               "std::reduce reassociates the accumulation "
               "non-deterministically; use par::ParallelReduce "
               "(ordered merge) or std::accumulate");
      }
    }
  }

  void RuleTime() {
    if (info.time_exempt) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if ((t.text == "rand" || t.text == "srand") && StdQualified(toks, i)) {
        Report("determinism.time", t,
               "std::" + t.text + " is seeded process state; use rng::Rng "
               "with an explicit seed");
        continue;
      }
      if (t.text == "random_device") {
        Report("determinism.time", t,
               "std::random_device draws entropy the run cannot replay; "
               "use rng::Rng with an explicit seed");
        continue;
      }
      if (t.text == "time" && i + 2 < toks.size() &&
          IsPunct(toks[i + 1], "(") &&
          (IsIdent(toks[i + 2], "nullptr") || IsIdent(toks[i + 2], "NULL") ||
           (toks[i + 2].kind == TokKind::kNumber && toks[i + 2].text == "0"))) {
        Report("determinism.time", t,
               "time(" + toks[i + 2].text + ") injects wall-clock state; "
               "thread timestamps through configuration or obs");
        continue;
      }
      if (t.text == "now" && ScopeQualified(toks, i) && i + 2 < toks.size() &&
          IsPunct(toks[i + 1], "(") && IsPunct(toks[i + 2], ")")) {
        Report("determinism.time", t,
               "argless ::now() reads the wall clock; clocks belong in "
               "src/obs timers or bench harnesses");
      }
    }
  }

  // --- [parsing] -----------------------------------------------------------

  void RuleRawParse() {
    static const std::set<std::string> kRawParse = {
        "atoi",   "atol",    "atoll",   "atof",   "strtol",  "strtoul",
        "strtoll", "strtoull", "strtof", "strtod", "strtold", "stoi",
        "stol",   "stoll",   "stoul",   "stoull", "stof",    "stod",
        "stold",  "sscanf",  "vsscanf"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !kRawParse.count(toks[i].text)) {
        continue;
      }
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
      // Member calls (obj.stoi(...)) are not the std functions.
      if (i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], ">"))) {
        continue;
      }
      Report("parsing.raw-parse", toks[i],
             "'" + toks[i].text + "' parses without whole-string/range "
             "checking; use the checked wrappers (cli parsers, "
             "par::ParseThreadsEnv, bench ParseNumber / std::from_chars)");
    }
  }

  void RuleGetenv() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      if (toks[i].text != "getenv" && toks[i].text != "secure_getenv") {
        continue;
      }
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
      Report("parsing.getenv", toks[i],
             "raw " + toks[i].text + "() outside the blessed wrappers "
             "(par::DefaultThreads, obs::EnvString); environment reads "
             "must be centralized and validated");
    }
  }

  // --- [silent-fallback] ---------------------------------------------------

  void RuleCatchAll() {
    static const std::set<std::string> kReports = {
        "throw",      "current_exception", "rethrow_exception",
        "abort",      "exit",              "_Exit",
        "quick_exit", "terminate",         "obs",
        "cerr",       "cout",              "clog",
        "fprintf",    "printf",            "FAIL",
        "ADD_FAILURE"};
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "catch") || !IsPunct(toks[i + 1], "(") ||
          !IsPunct(toks[i + 2], "...") || !IsPunct(toks[i + 3], ")")) {
        continue;
      }
      // Find the handler block and scan it for any rethrow/report marker.
      std::size_t open = i + 4;
      while (open < toks.size() && !IsPunct(toks[open], "{")) ++open;
      bool reports = false;
      int depth = 0;
      std::size_t j = open;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "{")) ++depth;
        if (IsPunct(toks[j], "}")) {
          --depth;
          if (depth == 0) break;
        }
        if (toks[j].kind == TokKind::kIdent && kReports.count(toks[j].text)) {
          reports = true;
        }
      }
      if (!reports) {
        Report("silent-fallback.catch-all", toks[i],
               "catch (...) swallows the exception without rethrowing "
               "(throw / std::current_exception) or reporting (obs, "
               "stderr, exit)");
      }
    }
  }

  void RuleEmptyDefault() {
    if (!info.default_scope) return;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "default") || !IsPunct(toks[i + 1], ":")) continue;
      if (IsPunct(toks[i + 2], ":")) continue;  // `default ::` qualifier
      if (!IsIdent(toks[i + 2], "return")) continue;
      if (IsPunct(toks[i + 3], ";")) continue;  // bare `return;` is a no-op
      std::size_t semi = i + 3;
      while (semi < toks.size() && !IsPunct(toks[semi], ";")) ++semi;
      Report("silent-fallback.empty-default", toks[i],
             "'default: " + Snippet(toks, i + 2, std::min(semi + 1, i + 8)) +
                 "' silently maps future enum members to a fallback value; "
                 "enumerate the cases so -Wswitch catches additions");
    }
  }

  // --- [perf] --------------------------------------------------------------

  // Advisory: per-host `m.Get(day, host)` probing inside a loop in the
  // activity hot paths. One Get is one bit; the word-level kernels
  // (Row(day) + popcount/XOR/ANDNOT, HostActiveDayCounts) touch 64 hosts
  // per memory access. The naive reference implementations in src/check
  // are deliberately out of scope — they exist to be slow and obvious.
  void RuleRowLoop() {
    if (!info.activity_impl) return;
    std::set<std::size_t> reported;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "for") || !IsPunct(toks[i + 1], "(")) continue;
      // Skip the loop header to its matching ')'.
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) {
          --depth;
          if (depth == 0) break;
        }
      }
      if (j >= toks.size()) continue;
      // Body: a brace-matched block, or a single statement up to ';'.
      std::size_t body = j + 1;
      std::size_t end = body;
      if (body < toks.size() && IsPunct(toks[body], "{")) {
        int braces = 0;
        for (end = body; end < toks.size(); ++end) {
          if (IsPunct(toks[end], "{")) ++braces;
          if (IsPunct(toks[end], "}")) {
            --braces;
            if (braces == 0) break;
          }
        }
      } else {
        while (end < toks.size() && !IsPunct(toks[end], ";")) ++end;
      }
      for (std::size_t k = body; k + 1 < end; ++k) {
        if (!IsIdent(toks[k], "Get") || !IsPunct(toks[k + 1], "(")) continue;
        // Member calls only: `m.Get(` / `m->Get(`.
        if (k < 1 ||
            !(IsPunct(toks[k - 1], ".") || IsPunct(toks[k - 1], ">"))) {
          continue;
        }
        // Nested loops see the same call; report it once.
        if (!reported.insert(k).second) continue;
        Report("perf.row-loop", toks[k],
               "per-host Get(day, host) inside a loop probes one bit per "
               "memory touch; hoist to Row(day) word kernels "
               "(popcount/XOR/ANDNOT) or HostActiveDayCounts");
      }
    }
  }

  // --- [hygiene] -----------------------------------------------------------

  void RulePragmaOnce() {
    if (!info.header) return;
    bool ok = toks.size() >= 3 && IsPunct(toks[0], "#") &&
              IsIdent(toks[1], "pragma") && IsIdent(toks[2], "once");
    if (!ok) {
      Token at;  // file-level finding anchored at 1:1
      at.line = 1;
      at.col = 1;
      Report("hygiene.pragma-once", at,
             "header does not open with #pragma once (comments may "
             "precede it, code may not)");
    }
  }

  void RuleUsingNamespace() {
    if (!info.header) return;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (IsIdent(toks[i], "using") && IsIdent(toks[i + 1], "namespace")) {
        Report("hygiene.using-namespace", toks[i],
               "'using namespace' in a header leaks into every includer");
      }
    }
  }

  void RuleIo() {
    if (!info.library) return;
    static const std::set<std::string> kWriteFns = {"printf", "fprintf",
                                                    "vprintf", "vfprintf",
                                                    "puts", "fputs"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (kWriteFns.count(t.text) && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(") &&
          !(i >= 1 && (IsPunct(toks[i - 1], ".") ||
                       IsPunct(toks[i - 1], ">")))) {
        Report("hygiene.io", t,
               "'" + t.text + "' writes to a stdio stream from library "
               "code; return data or report through obs (CLI and tests "
               "are exempt)");
        continue;
      }
      if ((t.text == "cout" || t.text == "cerr" || t.text == "clog") &&
          StdQualified(toks, i)) {
        Report("hygiene.io", t,
               "std::" + t.text + " in library code; take an std::ostream& "
               "or report through obs (CLI and tests are exempt)");
      }
    }
  }

  void RuleUncheckedClose() {
    if (!info.default_scope) return;
    static const std::set<std::string> kCloseFns = {
        "close", "fclose", "fflush", "fsync", "fdatasync"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || kCloseFns.count(t.text) == 0) continue;
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
      // Member calls (stream.close(), file->close()) go through objects
      // whose error state is queried separately; the rule targets the
      // POSIX/stdio calls whose only error report is the return value.
      if (i >= 1 &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], ">"))) {
        continue;
      }
      // Walk back over `std::` / leading `::` qualifiers to find what
      // precedes the whole call expression. A statement keyword before a
      // global `::` (as in `return ::close(fd)`) is not a qualifier.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "throw", "case", "else", "do"};
      std::size_t j = i;
      while (j >= 2 && IsPunct(toks[j - 1], ":") &&
             IsPunct(toks[j - 2], ":")) {
        if (j >= 3 && toks[j - 3].kind == TokKind::kIdent &&
            kStmtKeywords.count(toks[j - 3].text) == 0) {
          j -= 3;
        } else {
          j -= 2;
        }
      }
      // The result is discarded iff the call sits in statement position:
      // at the start of the file or right after a statement/block
      // boundary. Anything else (`if (close...`, `rc = close...`,
      // `return close...`, declarations) consumes or names it.
      bool discarded = j == 0 || IsPunct(toks[j - 1], ";") ||
                       IsPunct(toks[j - 1], "{") || IsPunct(toks[j - 1], "}");
      if (!discarded) continue;
      Report("hygiene.unchecked-close", t,
             "'" + t.text + "' result discarded: a failed close/flush is "
             "the last chance to see a lost write (ENOSPC, quota, NFS "
             "errors surface here); check it or justify a suppression");
    }
  }
};

const char* TagOfRule(const std::string& rule) {
  for (const RuleMeta& m : RuleCatalogue()) {
    if (rule == m.id) return m.tag;
  }
  return nullptr;
}

}  // namespace

FileInfo ClassifyPath(std::string rel_path) {
  std::replace(rel_path.begin(), rel_path.end(), '\\', '/');
  FileInfo info;
  info.rel_path = rel_path;
  info.header = EndsWith(rel_path, ".h") || EndsWith(rel_path, ".hpp");
  info.result_layer = StartsWith(rel_path, "src/activity/") ||
                      StartsWith(rel_path, "src/analysis/") ||
                      StartsWith(rel_path, "src/check/") ||
                      StartsWith(rel_path, "src/report/");
  info.library =
      StartsWith(rel_path, "src/") && !StartsWith(rel_path, "src/cli/");
  info.time_exempt =
      StartsWith(rel_path, "src/obs/") || StartsWith(rel_path, "bench/");
  info.default_scope =
      StartsWith(rel_path, "src/") || StartsWith(rel_path, "tools/");
  info.activity_impl = StartsWith(rel_path, "src/activity/") && !info.header;
  return info;
}

const std::vector<RuleMeta>& RuleCatalogue() {
  static const std::vector<RuleMeta> kRules = {
      {"determinism.unordered-iter", "ordered",
       "No iteration over std::unordered_* containers in result-producing "
       "layers (src/activity, src/analysis, src/check, src/report)."},
      {"determinism.reduce", "ordered",
       "No std::reduce in result-producing layers; use par::ParallelReduce "
       "or std::accumulate."},
      {"determinism.time", "time",
       "No std::rand/srand, std::random_device, time(nullptr), or argless "
       "::now() outside src/obs and bench/."},
      {"parsing.raw-parse", "parse",
       "No atoi/strtol/sto*/sscanf family; use the checked parsers."},
      {"parsing.getenv", "getenv",
       "No raw getenv outside the blessed wrappers (par::DefaultThreads, "
       "obs::EnvString)."},
      {"silent-fallback.catch-all", "fallback",
       "catch (...) must rethrow or report (obs/stderr/exit)."},
      {"silent-fallback.empty-default", "default",
       "No `default: return <value>;` in library enum switches."},
      {"hygiene.pragma-once", "pragma",
       "Every header opens with #pragma once."},
      {"hygiene.using-namespace", "using",
       "No `using namespace` in headers."},
      {"hygiene.io", "io",
       "No printf/std::cout/std::cerr in library code."},
      {"perf.row-loop", "rowloop",
       "No per-host Get(day, host) loops in src/activity implementation "
       "files; use the Row(day) word kernels."},
      {"hygiene.unchecked-close", "close",
       "No discarded fclose/close/fflush/fsync results; a failed close is "
       "a lost write."},
      {"lint.suppression", nullptr,
       "Every lint suppression carries a non-empty justification."},
      // Phase-2 (whole-project) rules; the passes live in graph.cc.
      {"layering.illegal-dep", "layer",
       "Modules include same-or-lower layers only: foundation (netbase, "
       "rng, timeutil, stats, io.base) -> infra (obs, par) -> data (io, "
       "activity, sim, ...) -> analysis (report, analysis, check) -> "
       "services (ingest, serve, cli)."},
      {"layering.cycle", "layer",
       "The module include graph must stay acyclic."},
      {"concurrency.fork-unsafe", "fork",
       "Nothing reachable from src/ingest through quoted includes may use "
       "par::, std::thread/jthread/async, or the std::mutex family "
       "(chaos-crash forks ingest processes)."},
      {"errors.discarded-result", "result",
       "Statement-position calls to ipscope::Result-returning functions "
       "discard the error; consume the value or cast to (void)."},
      {"concurrency.guarded-by",  "guard",
       "Fields annotated `// guards: <mutex>` are only touched in scopes "
       "that RAII-lock that mutex."},
  };
  return kRules;
}

FileAnalysis AnalyzeFile(const FileInfo& info, std::string_view source) {
  LexResult lexed = Lex(source);

  Engine engine{info, lexed.code, {}};
  engine.RulePragmaOnce();
  engine.RuleUsingNamespace();
  engine.RuleUnorderedIter();
  engine.RuleReduce();
  engine.RuleTime();
  engine.RuleRawParse();
  engine.RuleGetenv();
  engine.RuleCatchAll();
  engine.RuleEmptyDefault();
  engine.RuleIo();
  engine.RuleUncheckedClose();
  engine.RuleRowLoop();

  // Resolve where each suppression applies: a comment sharing a line with
  // code suppresses that line; a standalone comment suppresses the first
  // code line after it.
  std::set<int> code_lines;
  for (const Token& t : lexed.code) {
    for (int l = t.line; l <= t.end_line; ++l) code_lines.insert(l);
  }

  // Merge runs of consecutive standalone `//` lines into one logical
  // comment, so a justification may wrap across lines. A comment sharing
  // its line with code always stands alone (it suppresses that line).
  struct CommentBlock {
    std::string text;
    int line = 0;
    int end_line = 0;
    bool trailing = false;  // shares its first line with code
  };
  std::vector<CommentBlock> blocks;
  for (const Token& c : lexed.comments) {
    bool trailing = code_lines.count(c.line) > 0;
    bool line_style = c.text.rfind("//", 0) == 0;
    if (!trailing && line_style && !blocks.empty() &&
        !blocks.back().trailing &&
        blocks.back().text.rfind("//", 0) == 0 &&
        c.line == blocks.back().end_line + 1) {
      blocks.back().text += "\n";
      blocks.back().text += c.text;
      blocks.back().end_line = c.end_line;
      continue;
    }
    blocks.push_back(CommentBlock{c.text, c.line, c.end_line, trailing});
  }

  std::vector<Suppression> sups;
  FileAnalysis out;
  out.facts = ExtractFacts(lexed);
  for (const CommentBlock& c : blocks) {
    std::vector<Suppression> in_comment;
    ParseSuppressionsInComment(c.text, c.line, in_comment);
    for (Suppression& s : in_comment) {
      if (c.trailing) {
        s.applies_line = c.line;
      } else {
        auto it = code_lines.upper_bound(c.end_line);
        s.applies_line = it == code_lines.end() ? 0 : *it;
      }
      if (s.justification.empty()) {
        out.findings.push_back(Finding{
            "lint.suppression", info.rel_path, s.comment_line, 1,
            "suppression 'lint: " + s.tag +
                "(...)' has an empty justification; say why the contract "
                "holds here",
            {}});
        continue;  // an unjustified suppression does not silence anything
      }
      sups.push_back(std::move(s));
    }
  }

  for (Finding& f : engine.raw) {
    const char* tag = TagOfRule(f.rule);
    bool suppressed = false;
    if (tag != nullptr) {
      for (Suppression& s : sups) {
        if (s.applies_line == f.line && s.tag == tag) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed) {
      ++out.suppressions_used;
    } else {
      out.findings.push_back(std::move(f));
    }
  }
  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  // Export every justified suppression (used or not): the phase-2 passes
  // match them by tag + anchor line for findings anchored in this file.
  for (const Suppression& s : sups) {
    out.suppressions.push_back(SuppressionRecord{s.tag, s.applies_line});
  }
  return out;
}

}  // namespace ipscope::lint
