#include "sarif.h"

#include <cstdio>

namespace ipscope::lint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void WriteSarif(const std::vector<Finding>& findings, std::ostream& os) {
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ipscope_lint\",\n"
     << "          \"version\": \"1.0.0\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/ipscope/tools/lint\",\n"
     << "          \"rules\": [\n";
  const auto& rules = RuleCatalogue();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\"id\": \"" << JsonEscape(rules[i].id)
       << "\", \"shortDescription\": {\"text\": \""
       << JsonEscape(rules[i].summary) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \""
       << JsonEscape(f.path) << "\"}, \"region\": {\"startLine\": " << f.line
       << ", \"startColumn\": " << f.col << "}}}\n"
       << "          ]";
    // Phase-2 findings carry their evidence chain (include path, cycle
    // edges, the annotation a touch violates) as relatedLocations.
    if (!f.related.empty()) {
      os << ",\n          \"relatedLocations\": [\n";
      for (std::size_t r = 0; r < f.related.size(); ++r) {
        const RelatedLocation& rl = f.related[r];
        os << "            {\"physicalLocation\": {\"artifactLocation\": "
              "{\"uri\": \""
           << JsonEscape(rl.path) << "\"}, \"region\": {\"startLine\": "
           << rl.line << "}}, \"message\": {\"text\": \""
           << JsonEscape(rl.message) << "\"}}"
           << (r + 1 < f.related.size() ? "," : "") << "\n";
      }
      os << "          ]";
    }
    os << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace ipscope::lint
