// Phase-1 facts for the cross-file (phase-2) passes of ipscope_lint.
//
// AnalyzeFile extracts one FileFacts per translation unit alongside the
// per-file findings. Facts are the ONLY thing the whole-project passes in
// graph.h consume, which is what makes the on-disk cache (cache.h) sound:
// a file whose bytes have not changed contributes byte-identical facts, so
// its token streams never need to be rebuilt.
//
// Extracted facts:
//   * quoted #include edges (the layering DAG and fork-reachability input)
//   * declarations of ipscope::Result-returning functions (the cross-TU
//     symbol table for errors.discarded-result)
//   * statement-position call candidates whose value is discarded
//   * fork-unsafe primitive uses (par::, std::thread/jthread/async,
//     std::mutex family) for concurrency.fork-unsafe
//   * `// guards: <mutex>` field annotations and every member-field touch
//     together with the set of RAII-locked mutexes held at that token
//     (concurrency.guarded-by)
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace ipscope::lint {

struct FileFacts {
  // `#include "target"` — target is as written (rooted at src/ by project
  // convention, e.g. "obs/registry.h").
  struct Include {
    std::string target;
    int line = 0;
    int col = 0;
    bool operator==(const Include&) const = default;
  };

  // `Result<...> Name(...)` declaration or definition (optionally
  // qualified: `Result<...> Session::Open(...)` records "Open").
  struct ResultFn {
    std::string name;
    int line = 0;
    bool operator==(const ResultFn&) const = default;
  };

  // A call `Name(...)` in statement position: nothing consumes its value.
  // Phase 2 intersects these with the project-wide ResultFn table. An
  // explicit `(void)Name(...)` cast does not count as discarded.
  struct DiscardedCall {
    std::string name;
    int line = 0;
    int col = 0;
    bool operator==(const DiscardedCall&) const = default;
  };

  // A fork-unsafe primitive use. kind is "pool" (anything from par::,
  // ParallelFor/ParallelReduce), "thread" (std::thread/jthread/async), or
  // "mutex" (std::mutex family, condition variables).
  struct Primitive {
    std::string kind;
    std::string token;  // the offending spelling, e.g. "std::mutex"
    int line = 0;
    int col = 0;
    bool operator==(const Primitive&) const = default;
  };

  // `// guards: <mutex>` on (or immediately above) a field declaration:
  // the field may only be touched while <mutex> is locked.
  struct GuardAnnotation {
    std::string field;
    std::string mutex;
    int decl_line = 0;  // the code line the annotation applies to
    int ann_line = 0;   // where the comment itself sits
    bool operator==(const GuardAnnotation&) const = default;
  };

  // A member-field-shaped identifier touch (trailing '_' or accessed via
  // `.`/`->`), with the mutexes RAII-locked in enclosing scopes.
  struct FieldTouch {
    std::string field;
    int line = 0;
    int col = 0;
    std::vector<std::string> held;  // sorted, deduplicated
    bool operator==(const FieldTouch&) const = default;
  };

  std::vector<Include> includes;
  std::vector<ResultFn> result_fns;
  std::vector<DiscardedCall> discarded_calls;
  std::vector<Primitive> primitives;
  std::vector<GuardAnnotation> guards;
  std::vector<FieldTouch> touches;

  bool operator==(const FileFacts&) const = default;
};


// Extracts every fact from one lexed file. Pure function of the token
// streams; path-independent (classification happens in phase 2).
FileFacts ExtractFacts(const LexResult& lexed);

}  // namespace ipscope::lint
