// Comment/string-aware C++ token stream for ipscope_lint.
//
// The lexer splits a translation unit into *code tokens* (identifiers,
// numbers, string/char literals, punctuation) and *comment tokens*, kept in
// separate streams so the rule engine can pattern-match code without ever
// tripping over banned names that only appear in prose or literals
// ("atoi" inside a string is not a call), while the suppression parser
// reads only comments.
//
// It is a lexer, not a preprocessor: directives appear as ordinary tokens
// ('#', 'pragma', 'once'), macros are not expanded, and headers are not
// included. That is exactly the granularity the project-contract rules
// need — they match token shapes ("catch ( ... )", "std :: reduce"),
// never semantics.
//
// Handled C++ lexical edge cases (all covered by tests/lint_test.cc):
//   * line and multi-line block comments (with line tracking)
//   * string literals with escapes, char literals, L/u/U/u8 prefixes
//   * raw strings R"delim(...)delim" including custom delimiters
//   * pp-numbers with digit separators (1'000'000), hex floats, exponents
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ipscope::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords (no distinction needed)
  kNumber,   // pp-number
  kString,   // string literal, incl. raw strings; text keeps the quotes
  kChar,     // character literal
  kPunct,    // single punctuation char, except "..." which is one token
  kComment,  // only ever appears in LexResult::comments
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;      // 1-based start line
  int col = 1;       // 1-based start column
  int end_line = 1;  // last line the token touches (multi-line comments/raws)
};

struct LexResult {
  std::vector<Token> code;
  std::vector<Token> comments;
};

LexResult Lex(std::string_view source);

}  // namespace ipscope::lint
