// Shared token-shape helpers for the ipscope_lint rule engine and the
// phase-1 fact extractor. Everything here operates on the code stream the
// lexer produces (single-char punctuation except "...", no preprocessing),
// so "`->`" is the token pair `-` `>` and "`::`" is `:` `:`.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace ipscope::lint {

using Tokens = std::vector<Token>;

inline bool IsIdent(const Token& t, std::string_view name) {
  return t.kind == TokKind::kIdent && t.text == name;
}
inline bool IsPunct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

// True when tokens i-2, i-1 spell `std ::` (i.e. toks[i] is std-qualified).
inline bool StdQualified(const Tokens& toks, std::size_t i) {
  return i >= 3 && IsPunct(toks[i - 1], ":") && IsPunct(toks[i - 2], ":") &&
         IsIdent(toks[i - 3], "std");
}

// True when toks[i] is preceded by `::` (any qualification).
inline bool ScopeQualified(const Tokens& toks, std::size_t i) {
  return i >= 2 && IsPunct(toks[i - 1], ":") && IsPunct(toks[i - 2], ":");
}

// toks[i] is '<': returns the index just past its matching '>', or i on
// imbalance. Single-char puncts mean '>>' counts as two closers.
inline std::size_t SkipTemplateArgs(const Tokens& toks, std::size_t i) {
  int depth = 0;
  std::size_t j = i;
  for (; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "<")) ++depth;
    if (IsPunct(toks[j], ">")) {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (IsPunct(toks[j], ";")) break;  // statement end: not a template
  }
  return i;
}

inline std::string Snippet(const Tokens& toks, std::size_t first,
                           std::size_t last) {
  std::string out;
  for (std::size_t i = first; i < last && i < toks.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += toks[i].text;
  }
  return out;
}

// toks[i] is the callee identifier of a call expression (`Name (` shape).
// Walks backwards over the whole postfix expression the call hangs off —
// `a :: b`, `obj . member`, `ptr -> member`, chained calls `f() . g` and
// subscripts `v[i] . g` — and returns the index of the expression's first
// token. Used to decide whether the call sits in statement position (its
// value is discarded).
inline std::size_t CallExprStart(const Tokens& toks, std::size_t i) {
  // A statement keyword before a global `::` (as in `return ::close(fd)`)
  // is not a qualifier — the walk must stop at the `::`, not swallow the
  // keyword into the expression.
  static const char* const kStmtKeywords[] = {
      "return", "co_return", "co_yield", "co_await", "throw",
      "case",   "else",      "do",       "goto"};
  auto is_stmt_keyword = [](const Token& t) {
    if (t.kind != TokKind::kIdent) return false;
    for (const char* kw : kStmtKeywords) {
      if (t.text == kw) return true;
    }
    return false;
  };
  std::size_t j = i;
  for (;;) {
    // Skip `X ::` / leading `::` qualifier pairs.
    while (j >= 2 && IsPunct(toks[j - 1], ":") && IsPunct(toks[j - 2], ":")) {
      if (j >= 3 && toks[j - 3].kind == TokKind::kIdent &&
          !is_stmt_keyword(toks[j - 3])) {
        j -= 3;
      } else {
        j -= 2;
      }
    }
    // Member-access connector before the name? (`->` lexes as `-` `>`.)
    std::size_t k;
    if (j >= 2 && IsPunct(toks[j - 1], ".")) {
      k = j - 2;
    } else if (j >= 3 && IsPunct(toks[j - 1], ">") &&
               IsPunct(toks[j - 2], "-")) {
      k = j - 3;
    } else {
      return j;
    }
    // k is the last token of the object expression the member hangs off.
    if (toks[k].kind == TokKind::kIdent) {
      j = k;
      continue;
    }
    if (IsPunct(toks[k], ")") || IsPunct(toks[k], "]")) {
      // Match the closer backwards to its opener, then keep walking if the
      // opener follows an identifier (a chained call / subscript).
      const char* open = IsPunct(toks[k], ")") ? "(" : "[";
      const char* close = IsPunct(toks[k], ")") ? ")" : "]";
      int depth = 0;
      std::size_t m = k + 1;
      while (m-- > 0) {
        if (IsPunct(toks[m], close)) ++depth;
        if (IsPunct(toks[m], open)) {
          --depth;
          if (depth == 0) break;
        }
        if (m == 0) return j;  // imbalanced; stop where we are
      }
      if (m >= 1 && toks[m - 1].kind == TokKind::kIdent) {
        j = m - 1;
        continue;
      }
      return m;
    }
    return j;
  }
}

}  // namespace ipscope::lint
