// Project-contract rules for ipscope_lint.
//
// Every rule encodes an invariant PRs 1-5 established by convention and
// review alone; the analyzer turns them into machine-checked contracts:
//
//  [determinism] — the ordered-merge contract (DESIGN §4.8) guarantees
//  bit-identical results for any --threads. Iterating a std::unordered_*
//  container (or calling std::reduce) in a result-producing layer reorders
//  output with the hash seed / libstdc++ version; wall-clock sources and
//  std::random_device make runs unreproducible.
//    determinism.unordered-iter   range-for / .begin() over an unordered
//                                 container in src/{activity,analysis,
//                                 check,report}. Suppress: lint: ordered(...)
//    determinism.reduce           std::reduce in the same layers.
//                                 Suppress: lint: ordered(...)
//    determinism.time             std::rand/srand, std::random_device,
//                                 time(nullptr), argless ::now() outside
//                                 src/obs and bench/. Suppress: lint: time(...)
//
//  [parsing] — PR 1 and PR 5 replaced every silent atoi-style fallback
//  with checked whole-string parses (par::ParseThreadsEnv, the cli
//  checked parsers, bench ParseNumber). Raw parses must not come back.
//    parsing.raw-parse            atoi/strtol/stoull/sscanf family.
//                                 Suppress: lint: parse(...)
//    parsing.getenv               raw getenv outside the blessed wrappers.
//                                 Suppress: lint: getenv(...)
//
//  [silent-fallback] — errors are typed (io::Result) or logged, never
//  swallowed.
//    silent-fallback.catch-all    catch (...) whose handler neither
//                                 rethrows (throw / current_exception) nor
//                                 reports (obs, stderr, exit/abort).
//                                 Suppress: lint: fallback(...)
//    silent-fallback.empty-default  `default: return <value>;` in library
//                                 switches — a new enum member silently
//                                 inherits the fallback instead of failing
//                                 -Wswitch. Suppress: lint: default(...)
//
//  [hygiene]
//    hygiene.pragma-once          every header opens with #pragma once
//                                 (comments may precede it).
//    hygiene.using-namespace      no `using namespace` in headers.
//                                 Suppress: lint: using(...)
//    hygiene.io                   no printf/fprintf/std::cout/std::cerr in
//                                 library code (src/ minus src/cli; CLI,
//                                 tests, bench, examples exempt).
//                                 Suppress: lint: io(...)
//
//  [perf] — PR 8 rebuilt the activity analysis layer on word-level row
//  kernels (Row(day) + popcount/XOR/ANDNOT, HostActiveDayCounts): one
//  per-host Get probe touches one bit where a row word op touches 64.
//    perf.row-loop                advisory: member call to Get(...) inside
//                                 a for-loop body in src/activity/*.cc.
//                                 Suppress: lint: rowloop(...)
//
//  lint.suppression — a `// lint: tag(...)` with empty justification. The
//  justification is the reviewable artifact; it is mandatory.
//
// Suppression syntax: `// lint: <tag>(<justification>)`, comma-separable
// (`// lint: ordered(a), io(b)`). A trailing comment suppresses its own
// line; a standalone comment line suppresses the next code line. The
// justification must be non-empty and must not contain ')'.
// Cross-file (phase-2) rules live in graph.h; their catalogue entries are
// registered here so SARIF metadata, --list-rules, and the self-test's
// every-rule-fires check see one unified rule set:
//
//  [layering]     layering.illegal-dep, layering.cycle — the declared
//                 module DAG. Suppress: lint: layer(...)
//  [concurrency]  concurrency.fork-unsafe — nothing reachable from
//                 src/ingest may touch pools/threads/mutexes (chaos-crash
//                 forks). Suppress: lint: fork(...)
//                 concurrency.guarded-by — `// guards: <mutex>` fields are
//                 only touched under that lock. Suppress: lint: guard(...)
//  [errors]       errors.discarded-result — ipscope::Result return values
//                 must be consumed. Suppress: lint: result(...)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "facts.h"

namespace ipscope::lint {

// Where a file sits in the tree, derived from its path relative to the
// repo root. Drives which rules apply.
struct FileInfo {
  std::string rel_path;      // normalized, '/'-separated
  bool header = false;       // .h / .hpp
  bool result_layer = false; // src/activity|analysis|check|report
  bool library = false;      // src/** minus src/cli (hygiene.io scope)
  bool time_exempt = false;  // src/obs/** or bench/** (determinism.time)
  bool default_scope = false;// src/** or tools/** (silent-fallback.empty-default)
  bool activity_impl = false;// src/activity/** non-header (perf.row-loop)
};

// Classifies `rel_path` (path relative to the repo root, '/'-separated).
FileInfo ClassifyPath(std::string rel_path);

// A supporting location on a finding — the steps of an include chain, the
// declaration a call resolves to, the annotation a touch violates. Emitted
// as SARIF relatedLocations and as indented `via` lines in text output.
struct RelatedLocation {
  std::string path;
  int line = 0;
  std::string message;
};

struct Finding {
  std::string rule;     // e.g. "determinism.unordered-iter"
  std::string path;     // as reported (FileInfo::rel_path)
  int line = 0;
  int col = 0;
  std::string message;  // human sentence, includes the offending token span
  std::vector<RelatedLocation> related;  // phase-2 chains; empty in phase 1
};

// A justified suppression, exported so the phase-2 passes (graph.h) can
// honor `lint: layer(...)` etc. anchored in this file.
struct SuppressionRecord {
  std::string tag;
  int applies_line = 0;
};

struct FileAnalysis {
  std::vector<Finding> findings;    // unsuppressed findings only
  int suppressions_used = 0;        // findings silenced by a justified tag
  FileFacts facts;                  // phase-1 facts for the project passes
  std::vector<SuppressionRecord> suppressions;  // justified, incl. unused
};

// Runs every applicable rule over one file.
FileAnalysis AnalyzeFile(const FileInfo& info, std::string_view source);

// Rule catalogue, for SARIF metadata, --list-rules, and the self-test's
// every-rule-fires check.
struct RuleMeta {
  const char* id;
  const char* tag;   // suppression tag; nullptr = not suppressible
  const char* summary;
};
const std::vector<RuleMeta>& RuleCatalogue();

}  // namespace ipscope::lint
