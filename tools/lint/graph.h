// Phase-2 whole-project passes for ipscope_lint.
//
// Phase 1 (rules.cc) analyzes one file at a time and extracts FileFacts;
// this header consumes the facts of EVERY file at once and enforces the
// contracts no single translation unit can see:
//
//   layering.illegal-dep   the declared module layering (see kLayers in
//                          graph.cc): a module may include same-or-lower
//                          layers only. foundation (netbase, rng, timeutil,
//                          stats, io.base) → infra (obs, par) → data (io,
//                          activity, sim, ...) → analysis (report,
//                          analysis, check) → services (ingest, serve,
//                          cli). Suppress: lint: layer(...)
//   layering.cycle         the module include graph must be acyclic; a
//                          cycle is reported once, anchored at its
//                          lexicographically-smallest module's edge, with
//                          the full chain as related locations.
//                          Suppress: lint: layer(...)
//   concurrency.fork-unsafe  nothing reachable from src/ingest through
//                          quoted includes may touch par::, std::thread/
//                          jthread/async, or the std::mutex family — the
//                          PR 8 contract that makes chaos-crash fork
//                          testing sound. Findings anchor at the ingest
//                          file's include line (or the primitive itself
//                          when used directly) and carry the include chain.
//                          Suppress: lint: fork(...)
//   errors.discarded-result  a statement-position call to any function the
//                          project declares as returning ipscope::Result
//                          discards the error; `(void)` casts do not
//                          count as discarded. Suppress: lint: result(...)
//   concurrency.guarded-by  a field annotated `// guards: <mutex>` may
//                          only be touched in scopes that RAII-lock that
//                          mutex; annotations resolve module-wide so a
//                          header's annotation covers its .cc.
//                          Suppress: lint: guard(...)
//
// Suppressions for phase-2 findings live in the ANCHOR file, on the
// anchor line, exactly like phase-1 suppressions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rules.h"

namespace ipscope::lint {

// One file's contribution to the whole-project analysis.
struct ProjectFile {
  // Path findings are reported under (tree: the real relative path;
  // self-test: the corpus file name).
  std::string report_path;
  // Path used for module classification (tree: same as report_path;
  // self-test: the `// lint-corpus-as:` pseudo-path).
  std::string logical_path;
  FileFacts facts;
  // Justified suppressions in this file (phase-2 findings anchored here
  // consult them by tag + line).
  std::vector<SuppressionRecord> suppressions;
};

struct ProjectAnalysis {
  std::vector<Finding> findings;  // unsuppressed, unsorted
  int suppressions_used = 0;
};

// Maps a '/'-separated repo-relative path to its module, or "" when the
// path is outside src/. `src/<mod>/...` → "<mod>", except the handful of
// dependency-free src/io basenames (atomic_file, crc32c, result.h,
// store_error) which form the virtual foundation module "io.base" — they
// are documented to sit below obs (src/io/atomic_file.h) and everything
// may depend on them.
std::string ModuleOfPath(std::string_view path);

// Layer index of a module (0 = foundation … 4 = services), or -1 for
// modules absent from the declared table (unknown modules are exempt from
// the layering check but still participate in cycle detection).
int LayerOfModule(std::string_view module);

// Runs every whole-project pass over the files' facts.
ProjectAnalysis AnalyzeProject(const std::vector<ProjectFile>& files);

}  // namespace ipscope::lint
