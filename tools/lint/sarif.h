// SARIF 2.1.0 emission for ipscope_lint findings, so any CI annotator
// (GitHub code scanning, sarif-tools, IDE importers) can render them.
// Schema: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html
#pragma once

#include <ostream>
#include <vector>

#include "rules.h"

namespace ipscope::lint {

// Writes one complete SARIF log: a single run of the ipscope_lint driver
// with the full rule catalogue and one result per finding.
void WriteSarif(const std::vector<Finding>& findings, std::ostream& os);

}  // namespace ipscope::lint
