#include "scan.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cache.h"
#include "graph.h"

namespace ipscope::lint {
namespace {

namespace fs = std::filesystem;

bool LintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

std::string ReadFileOrThrow(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + p.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// First-line corpus marker: `// lint-corpus-as: <pseudo-path>`.
std::string CorpusPseudoPath(const std::string& source) {
  const std::string kKey = "lint-corpus-as:";
  std::size_t eol = source.find('\n');
  std::string first = source.substr(0, eol);
  std::size_t at = first.find(kKey);
  if (at == std::string::npos) return {};
  std::size_t p = at + kKey.size();
  while (p < first.size() && first[p] == ' ') ++p;
  std::size_t end = first.find_last_not_of(" \t\r");
  if (end == std::string::npos || end < p) return {};
  return first.substr(p, end - p + 1);
}

std::string RuleSlug(std::string id) {
  std::replace(id.begin(), id.end(), '.', '_');
  std::replace(id.begin(), id.end(), '-', '_');
  return id;
}

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
}

}  // namespace

ScanResult ScanTree(const std::string& root, const ScanOptions& opts) {
  static const char* kRoots[] = {"src", "tools", "bench", "tests", "examples"};
  std::vector<std::string> rels;
  for (const char* top : kRoots) {
    fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !LintableExtension(entry.path())) {
        continue;
      }
      std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.rfind("tests/lint_corpus/", 0) == 0) continue;
      rels.push_back(std::move(rel));
    }
  }
  std::sort(rels.begin(), rels.end());
  return ScanFiles(root, rels, opts);
}

ScanResult ScanFiles(const std::string& root,
                     const std::vector<std::string>& paths,
                     const ScanOptions& opts) {
  ScanResult out;
  FactsCache cache(opts.cache_dir);
  std::vector<ProjectFile> project;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : fs::path(root) / p;
    std::string rel = fs::path(p).is_absolute()
                          ? fs::relative(abs, root).generic_string()
                          : fs::path(p).generic_string();
    std::string source = ReadFileOrThrow(abs);
    std::uint32_t crc = ContentCrc(source);

    FileAnalysis fa;
    if (cache.Load(rel, crc, fa)) {
      ++out.cache_hits;
    } else {
      fa = AnalyzeFile(ClassifyPath(rel), source);
      if (cache.enabled()) {
        cache.Store(rel, crc, fa);
        ++out.facts_cached;
      }
    }
    ++out.files_scanned;
    out.suppressions_used += fa.suppressions_used;
    for (Finding& f : fa.findings) out.findings.push_back(std::move(f));
    project.push_back(ProjectFile{rel, rel, std::move(fa.facts),
                                  std::move(fa.suppressions)});
  }

  ProjectAnalysis pa = AnalyzeProject(project);
  out.suppressions_used += pa.suppressions_used;
  for (Finding& f : pa.findings) out.findings.push_back(std::move(f));
  SortFindings(out.findings);
  return out;
}

int RunSelfTest(const std::string& corpus_dir, std::ostream& os) {
  fs::path dir(corpus_dir);
  if (!fs::is_directory(dir)) {
    os << "lint self-test: corpus directory not found: " << corpus_dir
       << "\n";
    return 1;
  }

  // Expected findings: `<file>:<line>:<rule>` per manifest line.
  std::set<std::string> expected;
  {
    std::ifstream mf(dir / "MANIFEST.txt");
    if (!mf) {
      os << "lint self-test: missing " << (dir / "MANIFEST.txt").string()
         << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(mf, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      expected.insert(line);
    }
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && LintableExtension(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  int failures = 0;
  std::set<std::string> actual;
  std::set<std::string> fired_rules;
  std::vector<ProjectFile> project;
  for (const fs::path& f : files) {
    std::string source = ReadFileOrThrow(f);
    std::string pseudo = CorpusPseudoPath(source);
    std::string name = f.filename().string();
    if (pseudo.empty()) {
      os << "lint self-test: " << name
         << " lacks a `// lint-corpus-as: <path>` marker on line 1\n";
      ++failures;
      continue;
    }
    FileInfo info = ClassifyPath(pseudo);
    info.rel_path = name;  // report findings under the corpus file name
    FileAnalysis fa = AnalyzeFile(info, source);
    for (const Finding& finding : fa.findings) {
      actual.insert(name + ":" + std::to_string(finding.line) + ":" +
                    finding.rule);
      fired_rules.insert(finding.rule);
    }
    project.push_back(ProjectFile{name, pseudo, std::move(fa.facts),
                                  std::move(fa.suppressions)});
  }

  // Phase 2: the whole corpus is one project under its pseudo-paths, so
  // the cross-file rules (layering, fork-safety, discarded-Result,
  // guarded-by) fire across corpus files exactly as they would across the
  // tree.
  ProjectAnalysis pa = AnalyzeProject(project);
  for (const Finding& finding : pa.findings) {
    actual.insert(finding.path + ":" + std::to_string(finding.line) + ":" +
                  finding.rule);
    fired_rules.insert(finding.rule);
  }

  for (const std::string& e : expected) {
    if (!actual.count(e)) {
      os << "lint self-test: MISSED expected finding: " << e << "\n";
      ++failures;
    }
  }
  for (const std::string& a : actual) {
    if (!expected.count(a)) {
      os << "lint self-test: SPURIOUS finding: " << a << "\n";
      ++failures;
    }
  }

  // Every rule must fire on its .bad corpus file and have a committed
  // clean twin (whose cleanliness the spurious check above already
  // enforced).
  for (const RuleMeta& rule : RuleCatalogue()) {
    std::string slug = RuleSlug(rule.id);
    if (!fired_rules.count(rule.id)) {
      os << "lint self-test: rule " << rule.id
         << " fired on no corpus file\n";
      ++failures;
    }
    bool has_bad = false, has_good = false;
    for (const fs::path& f : files) {
      std::string name = f.filename().string();
      if (name.rfind(slug + ".bad.", 0) == 0) has_bad = true;
      if (name.rfind(slug + ".good.", 0) == 0) has_good = true;
    }
    if (!has_bad || !has_good) {
      os << "lint self-test: rule " << rule.id << " is missing its "
         << (!has_bad ? "violation file" : "clean twin") << " (" << slug
         << (!has_bad ? ".bad.*" : ".good.*") << ")\n";
      ++failures;
    }
  }

  if (failures == 0) {
    os << "lint self-test: OK (" << files.size() << " corpus files, "
       << expected.size() << " expected findings, "
       << RuleCatalogue().size() << " rules verified)\n";
    return 0;
  }
  os << "lint self-test: FAILED (" << failures << " problems)\n";
  return 1;
}

}  // namespace ipscope::lint
