// CRC32C-keyed on-disk cache of phase-1 analysis (build/lint-cache/).
//
// A full-tree scan lexes and rule-matches every file even though a typical
// edit touches one or two; caching the complete per-file FileAnalysis
// (findings, suppressions, facts) makes `scripts/lint.sh` incremental: an
// unchanged file is neither re-lexed nor re-analyzed, and the phase-2
// passes (graph.h) run over cached facts that are byte-identical to a
// fresh extraction.
//
// Invalidation — any mismatch is a miss, never an error:
//   * content: the entry stores Crc32c(file bytes); an edit changes it.
//   * path: classification depends on the path, so the entry stores the
//     relative path and the filename is Crc32c(rel_path) — a rename or a
//     (vanishingly unlikely) filename-CRC collision misses.
//   * analyzer generation: the header records a format version and the
//     rule-catalogue size; growing the catalogue or changing the
//     serialization invalidates every entry at once.
//   * truncation: entries end with an `end` sentinel; a partial write
//     (crash mid-store) fails to parse and self-heals on the next scan.
#pragma once

#include <cstdint>
#include <string>

#include "rules.h"

namespace ipscope::lint {

class FactsCache {
 public:
  // `dir` empty disables the cache (Load always misses, Store is a
  // no-op); otherwise the directory is created on first Store.
  explicit FactsCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }

  // Loads the entry for `rel_path` if it matches `content_crc` and the
  // current analyzer generation. Returns false (a miss) on any mismatch,
  // parse error, or absent entry.
  bool Load(const std::string& rel_path, std::uint32_t content_crc,
            FileAnalysis& out) const;

  // Writes/overwrites the entry for `rel_path`. Best-effort: an
  // unwritable cache directory degrades to a cold scan, never a failure.
  void Store(const std::string& rel_path, std::uint32_t content_crc,
             const FileAnalysis& fa) const;

 private:
  std::string dir_;
};

// Key helper: CRC32C of a file's bytes (wraps ipscope::io::Crc32c).
std::uint32_t ContentCrc(std::string_view content);

}  // namespace ipscope::lint
