// ipscope_lint — the project-contract static analyzer.
//
//   ipscope_lint [--root DIR] [--format text|sarif] [--out FILE]
//                [--metrics-out FILE] [--cache-dir DIR] [--list-rules]
//                [paths...]
//   ipscope_lint --self-test [--corpus DIR]
//
// With no paths, scans root/{src,tools,bench,tests,examples} (skipping the
// committed violation corpus). --cache-dir enables the CRC32C phase-1
// cache (see tools/lint/cache.h) so reruns only re-analyze changed files.
// Exit codes: 0 clean, 1 findings or self-test failure, 2 usage error.
// See tools/lint/rules.h for the rule catalogue and DESIGN.md §4.10/§4.15
// for the contracts the rules encode.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/timer.h"
#include "rules.h"
#include "sarif.h"
#include "scan.h"

namespace lint = ipscope::lint;

namespace {

int Usage(std::ostream& os) {
  os << "usage: ipscope_lint [--root DIR] [--format text|sarif] [--out FILE]\n"
        "                    [--metrics-out FILE] [--cache-dir DIR]\n"
        "                    [--list-rules] [paths...]\n"
        "       ipscope_lint --self-test [--corpus DIR]\n";
  return 2;
}

// `--flag value` or `--flag=value`.
bool TakeValueFlag(const std::vector<std::string>& args, std::size_t& i,
                   const std::string& name, std::string& out) {
  const std::string& a = args[i];
  if (a == name) {
    if (i + 1 >= args.size()) return false;
    out = args[++i];
    return true;
  }
  if (a.rfind(name + "=", 0) == 0) {
    out = a.substr(name.size() + 1);
    return true;
  }
  return false;
}

void WriteText(const lint::ScanResult& result, double scan_seconds,
               bool caching, std::ostream& os) {
  for (const lint::Finding& f : result.findings) {
    os << f.path << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
       << f.message << "\n";
    for (const lint::RelatedLocation& rl : f.related) {
      os << "    via " << rl.path << ":" << rl.line << ": " << rl.message
         << "\n";
    }
  }
  os << "ipscope_lint: " << result.files_scanned << " files, "
     << result.findings.size() << " findings, " << result.suppressions_used
     << " justified suppressions\n";
  char stats[160];
  if (caching) {
    double rate = result.files_scanned > 0
                      ? 100.0 * result.cache_hits / result.files_scanned
                      : 0.0;
    std::snprintf(stats, sizeof(stats),
                  "ipscope_lint: scan %.0f ms, cache %d/%d hits (%.1f%%), "
                  "%d re-extracted",
                  scan_seconds * 1e3, result.cache_hits,
                  result.files_scanned, rate, result.facts_cached);
  } else {
    std::snprintf(stats, sizeof(stats),
                  "ipscope_lint: scan %.0f ms (cache disabled)",
                  scan_seconds * 1e3);
  }
  os << stats << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string metrics_out;
  std::string cache_dir;
  std::string corpus;
  bool self_test = false;
  bool list_rules = false;
  std::vector<std::string> paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (TakeValueFlag(args, i, "--root", root)) continue;
    if (TakeValueFlag(args, i, "--format", format)) continue;
    if (TakeValueFlag(args, i, "--out", out_path)) continue;
    if (TakeValueFlag(args, i, "--metrics-out", metrics_out)) continue;
    if (TakeValueFlag(args, i, "--cache-dir", cache_dir)) continue;
    if (TakeValueFlag(args, i, "--corpus", corpus)) continue;
    if (args[i] == "--self-test") {
      self_test = true;
      continue;
    }
    if (args[i] == "--list-rules") {
      list_rules = true;
      continue;
    }
    if (args[i] == "--help" || args[i] == "-h") return Usage(std::cout);
    if (args[i].rfind("--", 0) == 0) {
      std::cerr << "ipscope_lint: unknown flag '" << args[i] << "'\n";
      return Usage(std::cerr);
    }
    paths.push_back(args[i]);
  }
  if (format != "text" && format != "sarif") {
    std::cerr << "ipscope_lint: --format must be text or sarif\n";
    return Usage(std::cerr);
  }

  if (list_rules) {
    for (const lint::RuleMeta& r : lint::RuleCatalogue()) {
      std::cout << r.id << "  (suppress: "
                << (r.tag ? std::string("lint: ") + r.tag + "(<why>)"
                          : std::string("not suppressible"))
                << ")\n    " << r.summary << "\n";
    }
    return 0;
  }

  try {
    if (self_test) {
      if (corpus.empty()) corpus = root + "/tests/lint_corpus";
      return lint::RunSelfTest(corpus, std::cout);
    }

    lint::ScanOptions opts;
    opts.cache_dir = cache_dir;
    ipscope::obs::Stopwatch watch;
    lint::ScanResult result = paths.empty()
                                  ? lint::ScanTree(root, opts)
                                  : lint::ScanFiles(root, paths, opts);
    double scan_seconds = watch.Seconds();

    auto& registry = ipscope::obs::GlobalRegistry();
    registry.GetCounter("lint.files_scanned")
        .Add(static_cast<std::uint64_t>(result.files_scanned));
    registry.GetCounter("lint.findings_total")
        .Add(result.findings.size());
    registry.GetCounter("lint.suppressions_used")
        .Add(static_cast<std::uint64_t>(result.suppressions_used));
    registry.GetCounter("lint.cache_hits")
        .Add(static_cast<std::uint64_t>(result.cache_hits));
    registry.GetCounter("lint.facts_cached")
        .Add(static_cast<std::uint64_t>(result.facts_cached));
    registry.GetGauge("lint.scan_seconds").Set(scan_seconds);
    if (!metrics_out.empty()) registry.WriteJsonFile(metrics_out);

    std::ofstream out_file;
    std::ostream* os = &std::cout;
    if (!out_path.empty()) {
      out_file.open(out_path);
      if (!out_file) {
        std::cerr << "ipscope_lint: cannot write " << out_path << "\n";
        return 2;
      }
      os = &out_file;
    }
    if (format == "sarif") {
      lint::WriteSarif(result.findings, *os);
    } else {
      WriteText(result, scan_seconds, !cache_dir.empty(), *os);
    }
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "ipscope_lint: fatal: " << e.what() << "\n";
    return 2;
  }
}
