// ipscope command-line tool. All logic lives in src/cli/commands.cc so it
// can be unit-tested; this is only the process entry point.
//
// Every command accepts global --metrics-out/--trace-out flags (see the
// README's "Observability" section); `ipscope_cli profile` exercises the
// whole pipeline and prints the per-stage wall-time table.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ipscope::cli::Main(args, std::cout, std::cerr);
}
