// ipscope command-line tool. All logic lives in src/cli/commands.cc so it
// can be unit-tested; this is only the process entry point.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ipscope::cli::Main(args, std::cout, std::cerr);
}
