// ipscope command-line tool. All logic lives in src/cli/commands.cc so it
// can be unit-tested; this is only the process entry point.
//
// Every command accepts global --metrics-out/--trace-out flags (see the
// README's "Observability" section); `ipscope_cli profile` exercises the
// whole pipeline and prints the per-stage wall-time table, and
// `ipscope_cli chaos` runs it under an injected fault schedule.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "cli/signals.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // SIGINT/SIGTERM set a drain flag instead of killing the process, so
  // long-running commands (serve, chaos-crash) stop at a safe boundary —
  // never mid-WriteFileAtomic — and still flush --metrics-out. A second
  // signal falls back to the default disposition (see src/cli/signals.h).
  ipscope::cli::InstallSignalHandlers();
  // cli::Run catches command-level failures itself; anything that still
  // escapes (parse-stage throws, allocation failure, a bug) must not
  // terminate() — print one structured line and exit 2 like other flag
  // and usage errors.
  try {
    return ipscope::cli::Main(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "ipscope_cli: fatal: " << e.what() << "\n";
    return 2;
  } catch (...) {
    std::cerr << "ipscope_cli: fatal: unknown exception\n";
    return 2;
  }
}
