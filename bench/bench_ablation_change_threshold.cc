// Ablation: the paper's major-change threshold (|delta STU| > 0.25, §5.2).
//
// The paper picked 0.25 "based on anecdotal examination of activity
// patterns". With ground truth available we can sweep the threshold and
// report precision/recall/F1 of reconfiguration detection — showing where
// the paper's choice sits on the ROC curve.
#include <iostream>
#include <unordered_set>

#include "activity/change.h"
#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);

  auto store = cdn::Observatory::Daily(world).BuildStore();
  auto changes = activity::MaxMonthlyStuChange(store);

  std::unordered_set<net::BlockKey> reconfigured;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration()) {
      reconfigured.insert(net::BlockKeyOf(plan.block));
    }
  }

  std::cout << "=== Change-detector threshold sweep (paper uses 0.25) ===\n";
  std::cout << "active blocks: " << changes.size()
            << ", ground-truth reconfigurations among them: ";
  std::uint64_t truth_total = 0;
  for (const auto& c : changes) {
    truth_total += reconfigured.contains(c.key) ? 1 : 0;
  }
  std::cout << truth_total << "\n\n";

  report::Table t({"threshold", "flagged", "frac flagged", "precision",
                   "recall", "F1"});
  for (double threshold :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60}) {
    std::uint64_t flagged = 0, hit = 0;
    for (const auto& c : changes) {
      if (!c.IsMajor(threshold)) continue;
      ++flagged;
      if (reconfigured.contains(c.key)) ++hit;
    }
    double precision = flagged ? static_cast<double>(hit) / flagged : 0.0;
    double recall =
        truth_total ? static_cast<double>(hit) / truth_total : 0.0;
    double f1 = precision + recall > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    t.AddRow({report::FormatDouble(threshold), report::FormatCount(flagged),
              report::FormatPercent(static_cast<double>(flagged) /
                                    changes.size()),
              report::FormatPercent(precision), report::FormatPercent(recall),
              report::FormatDouble(f1)});
  }
  t.Print(std::cout);
  std::cout << "\n[low thresholds drown in in-situ variation (rotating "
               "pools, weekday effects); high thresholds miss gentler "
               "reconfigurations. The paper's 0.25 sits near the F1 knee.]\n";
  return 0;
}
