// Regenerates Fig 10: UA samples vs unique UA strings per /24, with the
// three-region classification and its ground-truth validation.
#include <iostream>

#include "analysis/fig10_useragents.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto daily = ipscope::cdn::Observatory::Daily(world);
  auto result = ipscope::analysis::RunFig10(world, daily);
  ipscope::analysis::PrintFig10(result, std::cout);
  return 0;
}
