// Ablation: the event-size tagging rule (Fig 5b).
//
// The paper tags each up event with the smallest prefix mask in which all
// addresses "either had an up event or showed no activity in both
// snapshots". A stricter alternative — every address in the prefix must
// itself have an up event — sounds more faithful but collapses: renumbered
// blocks rarely reactivate *every* single address, so the strict rule tags
// nearly everything as individual churn and the bulky-event signal
// disappears. This bench shows both rules side by side.
#include <iostream>

#include "activity/eventsize.h"
#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);

  auto store = cdn::Observatory::Daily(world).BuildStore();

  std::cout << "=== Up-event size tagging: paper rule vs strict rule ===\n\n";
  report::Table t({"window", "rule", "<=/24", "/25-/28", "/29-/32"});
  for (int w : {1, 7, 28}) {
    int num_windows = store.days() / w;
    activity::EventSizeHistogram paper, strict;
    for (int p = 0; p + 1 < num_windows; ++p) {
      auto hp = activity::EventSizes(store, p * w, (p + 1) * w, (p + 1) * w,
                                     (p + 2) * w, true);
      auto hs = activity::EventSizesStrict(store, p * w, (p + 1) * w,
                                           (p + 1) * w, (p + 2) * w, true);
      for (std::size_t m = 0; m < hp.by_mask.size(); ++m) {
        paper.by_mask[m] += hp.by_mask[m];
        strict.by_mask[m] += hs.by_mask[m];
      }
      paper.total += hp.total;
      strict.total += hs.total;
    }
    auto add = [&](const char* rule, const activity::EventSizeHistogram& h) {
      t.AddRow({std::to_string(w) + "d", rule,
                report::FormatPercent(h.FractionInMaskRange(0, 24)),
                report::FormatPercent(h.FractionInMaskRange(25, 28)),
                report::FormatPercent(h.FractionInMaskRange(29, 32))});
    };
    add("paper", paper);
    add("strict", strict);
  }
  t.Print(std::cout);
  std::cout << "\n[the strict rule erases the window-size trend the paper "
               "reports: without the inactive-in-both qualification, "
               "month-scale renumberings no longer register as bulky "
               "events]\n";
  return 0;
}
