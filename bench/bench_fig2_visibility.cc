// Regenerates Fig 2: CDN vs ICMP visibility at IP//24/prefix/AS granularity
// (2a) and the classification of ICMP-only addresses (2b).
#include <iostream>

#include "analysis/visibility.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto store = ipscope::cdn::Observatory::Daily(world).BuildStore();
  ipscope::bgp::RoutingFeed feed{world};
  auto result = ipscope::analysis::RunVisibility(world, store, feed);
  ipscope::analysis::PrintVisibility(result, std::cout);
  return 0;
}
