// Baseline comparison: UDmap-style login-trace inference (Xie et al.,
// §3.1) vs the paper's rDNS tagging vs ground truth — which method best
// recovers static/dynamic assignment, and what lease lengths does the
// login trace reveal per true policy?
#include <iostream>
#include <map>
#include <unordered_map>
#include <vector>

#include "baseline/udmap.h"
#include "cdn/observatory.h"
#include "common.h"
#include "rdns/tagger.h"
#include "report/table.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);

  // Ground truth over stable client blocks.
  std::unordered_map<net::BlockKey, sim::PolicyKind> truth;
  std::vector<net::BlockKey> client_keys;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (plan.HasReconfiguration()) continue;
    truth[net::BlockKeyOf(plan.block)] = plan.base.kind;
    if (sim::IsClientPolicy(plan.base.kind)) {
      client_keys.push_back(net::BlockKeyOf(plan.block));
    }
  }
  auto is_dynamic = [](sim::PolicyKind k) {
    return k == sim::PolicyKind::kDynamicShort ||
           k == sim::PolicyKind::kDynamicLong;
  };
  auto is_static = [](sim::PolicyKind k) {
    return k == sim::PolicyKind::kStatic;
  };
  std::uint64_t true_dynamic = 0, true_static = 0;
  for (net::BlockKey key : client_keys) {
    if (is_dynamic(truth[key])) ++true_dynamic;
    if (is_static(truth[key])) ++true_static;
  }

  struct Score {
    std::uint64_t tagged = 0, correct = 0, truth_total = 0;
    double Precision() const {
      return tagged ? static_cast<double>(correct) / tagged : 0.0;
    }
    double Recall() const {
      return truth_total ? static_cast<double>(correct) / truth_total : 0.0;
    }
  };
  auto score = [&](const std::vector<net::BlockKey>& keys, auto correct_fn,
                   std::uint64_t truth_total) {
    Score s;
    s.truth_total = truth_total;
    for (net::BlockKey key : keys) {
      auto it = truth.find(key);
      if (it == truth.end()) continue;
      ++s.tagged;
      if (correct_fn(it->second)) ++s.correct;
    }
    return s;
  };

  // --- Method 1: the paper's rDNS keyword tagging ---
  rdns::PtrGenerator ptr{world};
  rdns::TaggedBlocks rdns_tags = rdns::TagBlocks(ptr, client_keys);
  Score rdns_dyn = score(rdns_tags.dynamic_blocks, is_dynamic, true_dynamic);
  Score rdns_sta = score(rdns_tags.static_blocks, is_static, true_static);

  // --- Method 2: UDmap over login traces ---
  cdn::LoginTraceGenerator logins{world,
                                  cdn::Observatory::Daily(world).spec()};
  auto events = logins.Trace();
  auto udmap = baseline::AnalyzeLogins(events);
  Score udmap_dyn = score(udmap.dynamic_blocks, is_dynamic, true_dynamic);
  Score udmap_sta = score(udmap.static_blocks, is_static, true_static);

  std::cout << "=== Static/dynamic inference: rDNS (paper) vs UDmap "
               "(baseline) ===\n";
  std::cout << "login events analysed: " << events.size() << "\n\n";
  report::Table t({"method", "class", "tagged", "precision", "recall"});
  auto add = [&](const char* method, const char* cls, const Score& s) {
    t.AddRow({method, cls, report::FormatCount(s.tagged),
              report::FormatPercent(s.Precision()),
              report::FormatPercent(s.Recall())});
  };
  add("rDNS keywords", "dynamic", rdns_dyn);
  add("rDNS keywords", "static", rdns_sta);
  add("UDmap logins", "dynamic", udmap_dyn);
  add("UDmap logins", "static", udmap_sta);
  t.Print(std::cout);
  std::cout << "[rDNS recall is bounded by PTR coverage/noise; UDmap recall "
               "by login visibility — the paper's choice of rDNS tagging is "
               "validated if precision is high for both]\n";

  // --- Lease-length estimates from login holding times ---
  std::cout << "\n=== Median (user, ip) holding time by true policy ===\n";
  std::map<sim::PolicyKind, std::vector<double>> holdings;
  for (const auto& stats : udmap.blocks) {
    auto it = truth.find(stats.key);
    if (it == truth.end() || stats.events < 50) continue;
    holdings[it->second].push_back(stats.median_holding_steps);
  }
  report::Table h({"true policy", "blocks", "median holding (days)"});
  for (auto& [kind, values] : holdings) {
    h.AddRow({sim::PolicyKindName(kind),
              report::FormatCount(values.size()),
              report::FormatDouble(stats::Median(values), 1)});
  }
  h.Print(std::cout);
  std::cout << "[expected ordering: dynamic-short ~1 day << dynamic-long "
               "(lease-scale) << static (tenure-scale) — cf. Moura et al.'s "
               "DHCP churn estimation]\n";
  return 0;
}
