// Regenerates Fig 11: the 10x10x10 demographics cube over (STU, traffic,
// relative host count) per active /24.
#include <iostream>

#include "analysis/demographics.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto daily = ipscope::cdn::Observatory::Daily(world);
  auto result = ipscope::analysis::RunDemographics(world, daily);

  std::cout << "=== Fig 11: demographics cube ===\n";
  // Print only the Fig 11 part here; bench_fig12_rirs prints the per-RIR
  // views from the same analysis.
  std::cout << "blocks: " << result.blocks << "\n";
  std::cout << "STU < 0.2 cluster: " << 100.0 * result.low_stu_cluster
            << "%, STU > 0.8 cluster: " << 100.0 * result.high_stu_cluster
            << "%  [paper: strong bimodal split]\n";
  // Largest cube cells (the paper's biggest spheres).
  struct Cell {
    int b0, b1, b2;
    std::uint64_t n;
  };
  std::vector<Cell> cells;
  for (int a = 0; a < result.cube.bins(); ++a) {
    for (int b = 0; b < result.cube.bins(); ++b) {
      for (int c = 0; c < result.cube.bins(); ++c) {
        std::uint64_t n = result.cube.count(a, b, c);
        if (n > 0) cells.push_back({a, b, c, n});
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& x, const Cell& y) { return x.n > y.n; });
  std::cout << "\nlargest cells (stu, traffic, hosts bins; 0=low 9=high):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(cells.size(), 12); ++i) {
    const Cell& c = cells[i];
    std::cout << "  (" << c.b0 << "," << c.b1 << "," << c.b2 << ") -> "
              << c.n << " blocks\n";
  }
  ipscope::analysis::PrintDemographics(result, std::cout);
  return 0;
}
