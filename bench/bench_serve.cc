// Query-daemon benchmark: per-request latency (p50/p99) and QPS for the
// serve router, swept over client thread counts {1, 2, ceil(half), all}
// (deduplicated), plus a reload-race phase that hammers the server while
// snapshots flip underneath it. Every response — including cache hits and
// responses raced against Reload — is byte-compared to the DirectAnswer
// oracle for the snapshot id it claims, so the benchmark doubles as a
// correctness gate: a single divergent byte fails the run. Writes
// BENCH_serve.json (bench-JSON v2; baseline_only on 1-thread hosts).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdn/observatory.h"
#include "common.h"
#include "io/atomic_file.h"
#include "netbase/prefix.h"
#include "obs/json.h"
#include "par/pool.h"
#include "serve/frame.h"
#include "serve/server.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace serve = ipscope::serve;
namespace activity = ipscope::activity;

struct RunResult {
  int threads = 1;
  std::uint64_t requests = 0;
  double total_seconds = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
  double qps = 0;
  std::uint64_t mismatches = 0;
};

// The request mix a daemon actually sees: mostly cheap point lookups, a
// steady trickle of whole-store aggregations.
std::vector<std::string> RequestMix(const activity::ActivityStore& store,
                                    std::uint32_t asn) {
  std::vector<std::string> bodies;
  auto keys = store.keys();
  for (std::size_t i = 0; i < 16 && !keys.empty(); ++i) {
    ipscope::net::BlockKey key = keys[i * (keys.size() - 1) / 15];
    bodies.push_back(R"({"endpoint": "point", "block": ")" +
                     ipscope::net::BlockFromKey(key).ToString() + "\"}");
  }
  bodies.push_back(R"({"endpoint": "summary"})");
  bodies.push_back(R"({"endpoint": "churn", "window": 7})");
  bodies.push_back(R"({"endpoint": "patterns"})");
  if (!keys.empty()) {
    ipscope::net::Prefix p16{
        ipscope::net::IPv4Addr{(keys.front() << 8) & 0xFFFF0000u}, 16};
    bodies.push_back(R"({"endpoint": "prefix", "prefix": ")" +
                     p16.ToString() + "\"}");
  }
  bodies.push_back(R"({"endpoint": "as", "asn": )" + std::to_string(asn) +
                   "}");
  return bodies;
}

RunResult RunSwarm(serve::Server& server, const std::vector<std::string>& mix,
                   const std::vector<std::string>& expected, int threads,
                   int requests_per_thread) {
  RunResult run;
  run.threads = threads;
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(threads));
  std::atomic<std::uint64_t> mismatches{0};
  auto wall_start = Clock::now();
  std::vector<std::thread> swarm;
  for (int t = 0; t < threads; ++t) {
    swarm.emplace_back([&, t] {
      auto& mine = latencies[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(requests_per_thread));
      for (int r = 0; r < requests_per_thread; ++r) {
        std::size_t i = static_cast<std::size_t>(t + r) % mix.size();
        auto start = Clock::now();
        std::string got = server.HandleRequest(mix[i]);
        mine.push_back(
            std::chrono::duration<double>(Clock::now() - start).count());
        if (got != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : swarm) t.join();
  run.total_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  run.mismatches = mismatches.load();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  run.requests = all.size();
  if (!all.empty()) {
    run.p50_seconds = all[all.size() / 2];
    run.p99_seconds = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    run.qps = static_cast<double>(all.size()) / run.total_seconds;
  }
  return run;
}

// Hammers the server from `threads` clients while the main thread flips
// Reload between two store versions. Each response is oracle-checked
// against the store that was installed under the snapshot id it claims
// (odd ids are version A, even are version B — Reload alternates).
std::uint64_t ReloadRace(serve::Server& server,
                         const activity::ActivityStore& oracle_a,
                         const activity::ActivityStore& oracle_b,
                         const std::vector<std::string>& mix, int threads,
                         int reloads) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> swarm;
  for (int t = 0; t < std::max(1, threads); ++t) {
    swarm.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& body =
            mix[static_cast<std::size_t>(i++) % mix.size()];
        std::string got = server.HandleRequest(body);
        auto doc = ipscope::obs::json::Parse(got);
        const ipscope::obs::json::Value* id_field = doc.Find("snapshot");
        std::uint64_t id =
            id_field ? static_cast<std::uint64_t>(id_field->AsNumber()) : 0;
        const activity::ActivityStore& oracle =
            (id % 2 == 1) ? oracle_a : oracle_b;
        if (got != serve::Server::DirectAnswer(oracle, id, {}, body)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < reloads; ++r) {
    // Odd installs (ids 2, 4, ...) are B, then back to A, alternating.
    server.Reload(activity::ActivityStore{
        r % 2 == 0 ? oracle_b : oracle_a});
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : swarm) t.join();

  // Quiesced: a fresh request must report the final snapshot id (a stale
  // cache key — the IPSCOPE_SERVE_SKIP_PIN seeded bug — fails here).
  std::string fresh = server.HandleRequest(mix.front());
  auto doc = ipscope::obs::json::Parse(fresh);
  const ipscope::obs::json::Value* id_field = doc.Find("snapshot");
  if (id_field == nullptr ||
      static_cast<std::uint64_t>(id_field->AsNumber()) !=
          server.snapshot_id()) {
    mismatches.fetch_add(1, std::memory_order_relaxed);
  }
  return mismatches.load();
}

void WriteJson(std::ostream& os, const ipscope::sim::WorldConfig& cfg,
               const std::vector<RunResult>& runs) {
  os << "{\n  \"bench\": \"serve\",\n"
     << "  \"schema_version\": 2,\n"
     << "  \"client_blocks\": " << cfg.target_client_blocks << ",\n"
     << "  \"seed\": " << cfg.seed << ",\n"
     << "  \"unix_time\": " << std::time(nullptr) << ",\n";
  ipscope::bench::WriteHardwareJson(os, ipscope::bench::DetectHardware());
  os << ",\n  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const RunResult& run = runs[r];
    os << "    {\"threads\": " << run.threads
       << ", \"total_seconds\": " << run.total_seconds
       << ", \"requests\": " << run.requests << ", \"qps\": " << run.qps
       << ", \"stages\": {\n"
       << "      \"latency_p50\": {\"seconds\": " << run.p50_seconds
       << "},\n"
       << "      \"latency_p99\": {\"seconds\": " << run.p99_seconds << "}\n"
       << "    }}" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  // Same convention as bench_pipeline: a single-run sweep (1-hardware-
  // thread host) cannot measure scaling, so mark the report baseline_only
  // instead of fabricating a 1x speedup; benchdiff treats it as advisory.
  if (runs.size() < 2) {
    os << "  ],\n  \"baseline_only\": true\n}\n";
    return;
  }
  const RunResult& serial = runs.front();
  const RunResult& parallel = runs.back();
  auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
  os << "  ],\n  \"speedup\": {\n"
     << "    \"latency_p50\": " << ratio(serial.p50_seconds,
                                          parallel.p50_seconds) << ",\n"
     << "    \"latency_p99\": " << ratio(serial.p99_seconds,
                                          parallel.p99_seconds) << ",\n"
     << "    \"total\": " << ratio(parallel.qps, serial.qps) << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto config = ipscope::bench::ConfigFromArgs(argc, argv);
  std::cout << "serve bench: building world (" << config.target_client_blocks
            << " client blocks)\n";
  ipscope::sim::World world{config};
  auto attribution = serve::Server::AttributionFromWorld(world);
  auto store = ipscope::cdn::Observatory::Daily(world).BuildStore();
  activity::ActivityStore oracle_a = store;
  activity::ActivityStore oracle_b = store;
  oracle_b.SetDayCovered(0, false);

  std::uint32_t asn = attribution.empty() ? 0 : attribution.front().asn;
  auto mix = RequestMix(store, asn);
  std::vector<std::string> expected;
  for (const std::string& body : mix) {
    expected.push_back(
        serve::Server::DirectAnswer(oracle_a, 1, attribution, body));
  }

  int max_threads = ipscope::par::DefaultThreads();
  std::vector<int> sweep{1};
  for (int t : {2, (max_threads + 1) / 2, max_threads}) {
    if (t > 1 && t <= max_threads &&
        std::find(sweep.begin(), sweep.end(), t) == sweep.end()) {
      sweep.push_back(t);
    }
  }
  std::sort(sweep.begin(), sweep.end());

  const int requests_per_thread = 400;
  std::vector<RunResult> runs;
  std::uint64_t total_mismatches = 0;
  for (int t : sweep) {
    // A fresh server per thread count: every run starts with a cold cache,
    // so p50/p99 are comparable across the sweep.
    serve::Server server{activity::ActivityStore{oracle_a}};
    server.SetAttribution(attribution);
    runs.push_back(RunSwarm(server, mix, expected, t, requests_per_thread));
    total_mismatches += runs.back().mismatches;
    std::printf(
        "serve: threads=%d  requests=%llu  p50=%.1fus  p99=%.1fus  "
        "qps=%.0f\n",
        t, static_cast<unsigned long long>(runs.back().requests),
        runs.back().p50_seconds * 1e6, runs.back().p99_seconds * 1e6,
        runs.back().qps);
  }

  // Reload-race correctness phase (not timed into the sweep): snapshots
  // flip underneath the swarm; every response must match the oracle for
  // the snapshot id it claims.
  serve::Server race_server{activity::ActivityStore{oracle_a}};
  std::uint64_t race_mismatches = ReloadRace(
      race_server, oracle_a, oracle_b, mix, std::min(4, max_threads + 1), 8);
  std::printf("serve: reload race: %llu mismatches over 8 reloads\n",
              static_cast<unsigned long long>(race_mismatches));

  if (total_mismatches + race_mismatches > 0) {
    std::cerr << "FAIL: " << total_mismatches + race_mismatches
              << " responses diverged from the DirectAnswer oracle\n";
    return 1;
  }
  std::cout << "oracle: every served response bit-identical to direct "
               "store/analysis calls\n";

  std::ostringstream doc;
  WriteJson(doc, config, runs);
  if (auto error =
          ipscope::io::WriteFileAtomic("BENCH_serve.json", doc.view())) {
    std::cerr << "FAIL: " << *error << "\n";
    return 1;
  }
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}
