// Regenerates Fig 5: per-AS churn CDF (5a), up-event size distribution
// (5b), and churn-vs-BGP correlation (5c).
#include <iostream>

#include "analysis/fig5_dissect.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto observatory = ipscope::cdn::Observatory::Daily(world);
  auto store = observatory.BuildStore();
  ipscope::bgp::RoutingFeed feed{world};
  auto result =
      ipscope::analysis::RunFig5(store, feed, observatory.spec());
  ipscope::analysis::PrintFig5(result, std::cout);
  return 0;
}
