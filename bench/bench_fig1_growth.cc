// Regenerates Fig 1: monthly active IPv4 addresses 2008-2016, the pre-2014
// linear fit, and the post-2014 stagnation gap.
#include <iostream>

#include "analysis/fig1_growth.h"
#include "common.h"

int main(int argc, char** argv) {
  auto config = ipscope::bench::ConfigFromArgs(argc, argv);
  auto result = ipscope::analysis::RunFig1(config.seed);
  ipscope::analysis::PrintFig1(result, std::cout);
  return 0;
}
