// Regenerates Fig 8: STU change detection (8a), rDNS-tagged filling-degree
// CDFs (8b), and the STU histogram of densely-filled blocks (8c).
#include <iostream>

#include "analysis/fig8_blocks.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto store = ipscope::cdn::Observatory::Daily(world).BuildStore();
  auto result = ipscope::analysis::RunFig8(world, store);
  ipscope::analysis::PrintFig8(result, std::cout);
  return 0;
}
