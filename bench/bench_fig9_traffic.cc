// Regenerates Fig 9: hits vs days-active (9a), cumulative traffic
// concentration (9b), and the weekly top-10% traffic share trend (9c).
#include <iostream>

#include "analysis/fig9_traffic.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto daily = ipscope::cdn::Observatory::Daily(world);
  auto weekly = ipscope::cdn::Observatory::Weekly(world);
  auto result = ipscope::analysis::RunFig9(daily, weekly);
  ipscope::analysis::PrintFig9(result, std::cout);
  return 0;
}
