// Trinocular-style adaptive availability monitoring (paper ref [29]) vs
// ground truth: detection of block deactivations, false-outage rate on
// stable blocks, and the probing cost advantage over brute-force scanning.
#include <algorithm>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "report/table.h"
#include "scan/trinocular.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  auto config = bench::ConfigFromArgs(argc, argv, 1500);
  config.deactivate_rate_per_year = 0.15;  // more outage events to score
  sim::World world{config};
  bench::PrintWorldBanner(world);

  scan::TrinocularMonitor monitor{world};
  constexpr std::int32_t kFirst = 230, kLast = 330;
  auto result = monitor.Monitor(kFirst, kLast);

  std::unordered_map<net::BlockKey, const sim::BlockPlan*> plans;
  for (const sim::BlockPlan& plan : world.blocks()) {
    plans[net::BlockKeyOf(plan.block)] = &plan;
  }

  std::uint64_t stable_days = 0, stable_false_down = 0, stable_unknown = 0;
  int outages = 0, detected = 0;
  std::vector<double> lags;
  for (const scan::BlockTimeline& timeline : result.timelines) {
    const sim::BlockPlan* plan = plans.at(timeline.key);
    bool up_throughout =
        plan->active_from <= kFirst && plan->active_until >= kLast;
    if (up_throughout) {
      for (scan::BlockState s : timeline.state) {
        ++stable_days;
        if (s == scan::BlockState::kDown) ++stable_false_down;
        if (s == scan::BlockState::kUnknown) ++stable_unknown;
      }
      continue;
    }
    std::int32_t down_day = plan->active_until;
    if (!sim::IsClientPolicy(plan->base.kind) || down_day < kFirst + 5 ||
        down_day > kLast - 15) {
      continue;
    }
    ++outages;
    for (int d = static_cast<int>(down_day - kFirst); d < result.days; ++d) {
      if (timeline.state[static_cast<std::size_t>(d)] ==
          scan::BlockState::kDown) {
        ++detected;
        lags.push_back(static_cast<double>(d) -
                       static_cast<double>(down_day - kFirst));
        break;
      }
    }
  }

  std::cout << "=== Trinocular-style /24 availability monitoring ===\n";
  report::Table t({"metric", "value", "note"});
  t.AddRow({"covered blocks", report::FormatCount(result.timelines.size()),
            "blocks with ICMP-responsive addresses"});
  t.AddRow({"mean probes / block / day",
            report::FormatDouble(result.MeanProbesPerBlockDay()),
            "vs 256 for brute-force block scans"});
  t.AddRow({"false-outage rate (stable blocks)",
            report::FormatPercent(
                stable_days ? static_cast<double>(stable_false_down) /
                                  static_cast<double>(stable_days)
                            : 0.0),
            "up blocks misreported down"});
  t.AddRow({"unknown rate (stable blocks)",
            report::FormatPercent(
                stable_days ? static_cast<double>(stable_unknown) /
                                  static_cast<double>(stable_days)
                            : 0.0),
            "belief between thresholds"});
  t.AddRow({"ground-truth outages in window", report::FormatCount(
                static_cast<std::uint64_t>(outages)),
            "client block deactivations"});
  t.AddRow({"outages detected",
            outages ? report::FormatPercent(static_cast<double>(detected) /
                                            outages)
                    : "n/a",
            "inferred down after the event"});
  t.AddRow({"median detection lag (days)",
            report::FormatDouble(stats::Median(lags), 1),
            "event day -> first inferred-down day"});
  t.Print(std::cout);
  std::cout << "\n[Quan et al. report ~1% probe volume of a full census with "
               "high outage coverage — the adaptive-belief mechanism "
               "reproduces that trade-off here]\n";
  return 0;
}
