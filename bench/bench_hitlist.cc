// Representative-address selection (paper ref [15], §8 measurement
// implications): build per-/24 hitlists from an 8-week observation window
// under several strategies and score their responsiveness in the following
// 4 weeks.
#include <iostream>

#include "cdn/observatory.h"
#include "common.h"
#include "measurement/hitlist.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);
  auto store = cdn::Observatory::Daily(world).BuildStore();

  constexpr int kTrainFirst = 0, kTrainLast = 56;
  constexpr int kEvalFirst = 84, kEvalLast = 112;

  std::cout << "=== Hitlist strategies: train weeks 1-8, evaluate weeks "
               "13-16 ===\n\n";
  report::Table t({"strategy", "entries", "responsive later", "hit rate"});
  for (measurement::HitlistStrategy strategy :
       {measurement::HitlistStrategy::kMostActive,
        measurement::HitlistStrategy::kMostRecent,
        measurement::HitlistStrategy::kLowestActive,
        measurement::HitlistStrategy::kFixedOffset}) {
    auto hitlist =
        measurement::BuildHitlist(store, kTrainFirst, kTrainLast, strategy);
    auto score =
        measurement::EvaluateHitlist(store, hitlist, kEvalFirst, kEvalLast);
    t.AddRow({measurement::HitlistStrategyName(strategy),
              report::FormatCount(score.entries),
              report::FormatCount(score.responsive),
              report::FormatPercent(score.HitRate())});
  }
  t.Print(std::cout);
  std::cout << "\n[activity-informed selection (most-active) dominates "
               "naive choices; most-recent suffers in cycling pools, "
               "fixed-.1 misses sparse static blocks entirely — the §8 "
               "argument for activity-aware measurement infrastructure]\n";
  return 0;
}
