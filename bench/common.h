// Shared setup for the experiment harness binaries.
//
// Every harness accepts the world scale as argv[1] (number of client /24
// blocks; default 4000) and an optional seed as argv[2]. The harness prints
// the world scale first so readers can interpret absolute counts, then the
// experiment's measured-vs-paper rows.
//
// When the IPSCOPE_METRICS_OUT environment variable is set, every harness
// writes the process-global metrics registry (world-build timings, store
// sizes, analysis counters — see src/obs/) to that path as JSON at exit, so
// perf trajectories can be collected across runs without changing any
// harness.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/registry.h"
#include "sim/config.h"
#include "sim/world.h"

// Injected by bench/CMakeLists.txt so every report records the toolchain
// that produced it; "unknown" keeps standalone compiles working.
#ifndef IPSCOPE_BENCH_FLAGS
#define IPSCOPE_BENCH_FLAGS "unknown"
#endif
#ifndef IPSCOPE_BENCH_GIT_SHA
#define IPSCOPE_BENCH_GIT_SHA "unknown"
#endif

namespace ipscope::bench {

// Host + toolchain fingerprint embedded in every bench-JSON v2 report.
// `ipscope_cli benchdiff` refuses to gate on timing deltas between reports
// whose fingerprints differ — a number measured on a 1-thread CI container
// must never fail (or pass) a check against a 16-core workstation.
struct HardwareInfo {
  std::string cpu_model;
  int hardware_threads = 0;
  std::string compiler;
  std::string flags;
  std::string git_sha;
};

inline HardwareInfo DetectHardware() {
  HardwareInfo hw;
  unsigned n = std::thread::hardware_concurrency();
  hw.hardware_threads = n == 0 ? 1 : static_cast<int>(n);
  // First "model name" row of /proc/cpuinfo; absent (non-Linux, stripped
  // containers) stays "unknown" rather than guessing.
  std::ifstream cpuinfo{"/proc/cpuinfo"};
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    auto start = line.find_first_not_of(" \t", colon + 1);
    if (start != std::string::npos) hw.cpu_model = line.substr(start);
    break;
  }
  if (hw.cpu_model.empty()) hw.cpu_model = "unknown";
#if defined(__clang__)
  hw.compiler = "clang " + std::to_string(__clang_major__) + "." +
                std::to_string(__clang_minor__) + "." +
                std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  hw.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                std::to_string(__GNUC_MINOR__) + "." +
                std::to_string(__GNUC_PATCHLEVEL__);
#else
  hw.compiler = "unknown";
#endif
  hw.flags = IPSCOPE_BENCH_FLAGS;
  hw.git_sha = IPSCOPE_BENCH_GIT_SHA;
  return hw;
}

// The `"hardware": {...}` member of a bench-JSON v2 document (no trailing
// comma or newline; `indent` prefixes every line).
inline void WriteHardwareJson(std::ostream& os, const HardwareInfo& hw,
                              const std::string& indent = "  ") {
  os << indent << "\"hardware\": {\n"
     << indent << "  \"cpu_model\": \"" << obs::json::Escape(hw.cpu_model)
     << "\",\n"
     << indent << "  \"hardware_threads\": " << hw.hardware_threads << ",\n"
     << indent << "  \"compiler\": \"" << obs::json::Escape(hw.compiler)
     << "\",\n"
     << indent << "  \"flags\": \"" << obs::json::Escape(hw.flags) << "\",\n"
     << indent << "  \"git_sha\": \"" << obs::json::Escape(hw.git_sha)
     << "\"\n"
     << indent << "}";
}

namespace detail {

// Whole-string checked parse: rejects empty input, trailing junk, and
// out-of-range values (unlike the atoi/atoll this replaced, which silently
// turned garbage into 0).
template <typename T>
inline bool ParseNumber(const char* text, T& out) {
  const char* last = text + std::strlen(text);
  if (text == last) return false;
  auto [ptr, ec] = std::from_chars(text, last, out);
  return ec == std::errc{} && ptr == last;
}

[[noreturn]] inline void UsageExit(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [client_blocks] [seed]\n"
            << "  client_blocks  positive integer world scale "
               "(default 4000)\n"
            << "  seed           unsigned integer RNG seed\n";
  std::exit(2);
}

}  // namespace detail

// Registers an atexit hook (once per process) that dumps the global metrics
// registry to $IPSCOPE_METRICS_OUT, if set.
inline void InstallMetricsDump() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto path = obs::EnvString("IPSCOPE_METRICS_OUT");
    if (!path) return;
    static std::string out_path;
    out_path = *path;
    std::atexit(+[] {
      try {
        obs::GlobalRegistry().WriteJsonFile(out_path);
      } catch (const std::exception& e) {
        std::cerr << "metrics dump failed: " << e.what() << "\n";
      }
    });
  });
}

inline sim::WorldConfig ConfigFromArgs(int argc, char** argv,
                                       int default_blocks = 4000) {
  InstallMetricsDump();
  sim::WorldConfig config;
  config.target_client_blocks = default_blocks;
  if (argc > 1) {
    int blocks = 0;
    if (!detail::ParseNumber(argv[1], blocks) || blocks <= 0) {
      detail::UsageExit(argv[0]);
    }
    config.target_client_blocks = blocks;
  }
  if (argc > 2) {
    std::uint64_t seed = 0;
    if (!detail::ParseNumber(argv[2], seed)) {
      detail::UsageExit(argv[0]);
    }
    config.seed = seed;
  }
  return config;
}

inline void PrintWorldBanner(const sim::World& world) {
  std::cout << "world: seed " << world.config().seed << ", "
            << world.blocks().size() << " /24 blocks ("
            << world.client_block_count() << " client), "
            << world.ases().size() << " ASes\n"
            << "note: absolute counts are at simulation scale; compare "
               "shapes/ratios with the paper values shown in brackets.\n\n";
}

}  // namespace ipscope::bench
