// Shared setup for the experiment harness binaries.
//
// Every harness accepts the world scale as argv[1] (number of client /24
// blocks; default 4000) and an optional seed as argv[2]. The harness prints
// the world scale first so readers can interpret absolute counts, then the
// experiment's measured-vs-paper rows.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "sim/config.h"
#include "sim/world.h"

namespace ipscope::bench {

inline sim::WorldConfig ConfigFromArgs(int argc, char** argv,
                                       int default_blocks = 4000) {
  sim::WorldConfig config;
  config.target_client_blocks =
      argc > 1 ? std::atoi(argv[1]) : default_blocks;
  if (config.target_client_blocks <= 0) {
    config.target_client_blocks = default_blocks;
  }
  if (argc > 2) {
    config.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  }
  return config;
}

inline void PrintWorldBanner(const sim::World& world) {
  std::cout << "world: seed " << world.config().seed << ", "
            << world.blocks().size() << " /24 blocks ("
            << world.client_block_count() << " client), "
            << world.ases().size() << " ASes\n"
            << "note: absolute counts are at simulation scale; compare "
               "shapes/ratios with the paper values shown in brackets.\n\n";
}

}  // namespace ipscope::bench
