// Shared setup for the experiment harness binaries.
//
// Every harness accepts the world scale as argv[1] (number of client /24
// blocks; default 4000) and an optional seed as argv[2]. The harness prints
// the world scale first so readers can interpret absolute counts, then the
// experiment's measured-vs-paper rows.
//
// When the IPSCOPE_METRICS_OUT environment variable is set, every harness
// writes the process-global metrics registry (world-build timings, store
// sizes, analysis counters — see src/obs/) to that path as JSON at exit, so
// perf trajectories can be collected across runs without changing any
// harness.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "obs/registry.h"
#include "sim/config.h"
#include "sim/world.h"

namespace ipscope::bench {

namespace detail {

// Whole-string checked parse: rejects empty input, trailing junk, and
// out-of-range values (unlike the atoi/atoll this replaced, which silently
// turned garbage into 0).
template <typename T>
inline bool ParseNumber(const char* text, T& out) {
  const char* last = text + std::strlen(text);
  if (text == last) return false;
  auto [ptr, ec] = std::from_chars(text, last, out);
  return ec == std::errc{} && ptr == last;
}

[[noreturn]] inline void UsageExit(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [client_blocks] [seed]\n"
            << "  client_blocks  positive integer world scale "
               "(default 4000)\n"
            << "  seed           unsigned integer RNG seed\n";
  std::exit(2);
}

}  // namespace detail

// Registers an atexit hook (once per process) that dumps the global metrics
// registry to $IPSCOPE_METRICS_OUT, if set.
inline void InstallMetricsDump() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto path = obs::EnvString("IPSCOPE_METRICS_OUT");
    if (!path) return;
    static std::string out_path;
    out_path = *path;
    std::atexit(+[] {
      try {
        obs::GlobalRegistry().WriteJsonFile(out_path);
      } catch (const std::exception& e) {
        std::cerr << "metrics dump failed: " << e.what() << "\n";
      }
    });
  });
}

inline sim::WorldConfig ConfigFromArgs(int argc, char** argv,
                                       int default_blocks = 4000) {
  InstallMetricsDump();
  sim::WorldConfig config;
  config.target_client_blocks = default_blocks;
  if (argc > 1) {
    int blocks = 0;
    if (!detail::ParseNumber(argv[1], blocks) || blocks <= 0) {
      detail::UsageExit(argv[0]);
    }
    config.target_client_blocks = blocks;
  }
  if (argc > 2) {
    std::uint64_t seed = 0;
    if (!detail::ParseNumber(argv[2], seed)) {
      detail::UsageExit(argv[0]);
    }
    config.seed = seed;
  }
  return config;
}

inline void PrintWorldBanner(const sim::World& world) {
  std::cout << "world: seed " << world.config().seed << ", "
            << world.blocks().size() << " /24 blocks ("
            << world.client_block_count() << " client), "
            << world.ases().size() << " ASes\n"
            << "note: absolute counts are at simulation scale; compare "
               "shapes/ratios with the paper values shown in brackets.\n\n";
}

}  // namespace ipscope::bench
