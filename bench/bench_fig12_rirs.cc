// Regenerates Fig 12: per-RIR STU x traffic grids colored by relative host
// count (the regional demographics of the active IPv4 space).
#include <iostream>

#include "analysis/demographics.h"
#include "common.h"
#include "report/table.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto daily = ipscope::cdn::Observatory::Daily(world);
  auto result = ipscope::analysis::RunDemographics(world, daily);
  ipscope::analysis::PrintDemographics(result, std::cout);

  // Regional summary table: share of each RIR's blocks that are
  // low-utilization vs high-utilization vs gateway-corner.
  std::cout << "\n=== Regional utilization summary ===\n";
  ipscope::report::Table t(
      {"RIR", "blocks", "STU<0.2", "STU>0.8", "gateway corner"});
  for (int r = 0; r < ipscope::geo::kRirCount; ++r) {
    const auto& cube = result.per_rir[static_cast<std::size_t>(r)];
    std::uint64_t low = 0, high = 0, total = cube.total();
    for (int b1 = 0; b1 < cube.bins(); ++b1) {
      for (int b2 = 0; b2 < cube.bins(); ++b2) {
        low += cube.count(0, b1, b2) + cube.count(1, b1, b2);
        high += cube.count(8, b1, b2) + cube.count(9, b1, b2);
      }
    }
    auto pct = [&](std::uint64_t n) {
      return ipscope::report::FormatPercent(
          total ? static_cast<double>(n) / static_cast<double>(total) : 0.0);
    };
    t.AddRow({std::string{ipscope::geo::RirName(
                  static_cast<ipscope::geo::Rir>(r))},
              ipscope::report::FormatCount(total), pct(low), pct(high),
              ipscope::report::FormatPercent(
                  result.gateway_corner[static_cast<std::size_t>(r)])});
  }
  t.Print(std::cout);
  std::cout << "[paper: ARIN skews low-utilization; LACNIC/AFRINIC dense; "
               "APNIC/AFRINIC strongest gateway corner]\n";
  return 0;
}
