// Incremental-ingestion benchmark: what does appending one new day of
// data cost through the sharded store (src/ingest) versus rebuilding and
// rewriting the whole dataset, and what does composing the shards back
// into an ActivityStore cost versus loading one monolithic file?
//
// Stages (single-threaded — the ingest path is deliberately pool-free so
// it stays fork-safe for the chaos-crash gate):
//   batch_save      SaveStoreFile of the full dataset: the per-day cost a
//                   non-incremental pipeline pays
//   session_bulk    Session bootstrap: commit days [0, N-1) as one shard
//   delta_append    commit the final day's delta — the steady-state cost
//   delta_replay    re-commit the same delta (idempotent no-op)
//   sharded_load    Session::Load() composing all shards
//   single_load     LoadStoreFile of the monolithic file
//
// The harness fails loudly unless the composed sharded store serializes
// bit-identically to the batch-built one. Writes BENCH_ingest.json
// (bench-JSON v2, atomic temp+rename) for `ipscope_cli benchdiff`.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cdn/observatory.h"
#include "common.h"
#include "ingest/session.h"
#include "io/atomic_file.h"
#include "io/store_io.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StageResult {
  std::string name;
  double seconds = 0;
  double mbytes = 0;  // bytes moved / 1e6, 0 when not meaningful
};

// A day-slice delta with every block of `full` present, so composed
// shards serialize byte-identically to the batch store (the same slicing
// the chaos-crash gate uses).
ipscope::activity::ActivityStore SliceDays(
    const ipscope::activity::ActivityStore& full, int first, int last) {
  ipscope::activity::ActivityStore delta{full.days()};
  for (int d = 0; d < full.days(); ++d) {
    if (d < first || d > last || !full.DayCovered(d)) {
      delta.SetDayCovered(d, false);
    }
  }
  full.ForEach([&](ipscope::net::BlockKey key,
                   const ipscope::activity::ActivityMatrix& m) {
    ipscope::activity::ActivityMatrix& dst = delta.GetOrCreate(key);
    for (int d = first; d <= last; ++d) {
      if (delta.DayCovered(d)) dst.Row(d) = m.Row(d);
    }
  });
  return delta;
}

std::string StoreBytes(const ipscope::activity::ActivityStore& store) {
  std::ostringstream os{std::ios::binary};
  ipscope::io::SaveStore(store, os);
  return std::move(os).str();
}

void WriteJson(std::ostream& os, const ipscope::sim::WorldConfig& cfg,
               const std::vector<StageResult>& stages, double total) {
  os << "{\n  \"bench\": \"ingest\",\n"
     << "  \"schema_version\": 2,\n"
     << "  \"client_blocks\": " << cfg.target_client_blocks << ",\n"
     << "  \"seed\": " << cfg.seed << ",\n"
     << "  \"unix_time\": " << std::time(nullptr) << ",\n";
  ipscope::bench::WriteHardwareJson(os, ipscope::bench::DetectHardware());
  os << ",\n  \"runs\": [\n    {\"threads\": 1, \"total_seconds\": " << total
     << ", \"stages\": {\n";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StageResult& st = stages[s];
    os << "      \"" << st.name << "\": {\"seconds\": " << st.seconds;
    if (st.mbytes > 0 && st.seconds > 0) {
      os << ", \"mb\": " << st.mbytes
         << ", \"mb_per_s\": " << st.mbytes / st.seconds;
    }
    os << "}" << (s + 1 < stages.size() ? "," : "") << "\n";
  }
  os << "    }}\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto config = ipscope::bench::ConfigFromArgs(argc, argv, 2000);
  std::cout << "ingest: " << config.target_client_blocks
            << " client blocks, seed " << config.seed << "\n";

  ipscope::sim::World world{config};
  auto full = ipscope::cdn::Observatory::Daily(world).BuildStore();
  const int days = full.days();
  auto bulk = SliceDays(full, 0, days - 2);
  auto last_day = SliceDays(full, days - 1, days - 1);

  fs::path root = fs::temp_directory_path() /
                  ("ipscope_bench_ingest_" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::path batch_file = root / "batch.ips2";
  fs::path store_dir = root / "sharded";
  fs::create_directories(root);

  std::vector<StageResult> stages;
  double total = 0;
  auto stage = [&](const std::string& name, double mbytes, auto&& fn) {
    auto start = Clock::now();
    fn();
    stages.push_back(StageResult{name, SecondsSince(start), mbytes});
    total += stages.back().seconds;
  };

  const double full_mb = static_cast<double>(StoreBytes(full).size()) / 1e6;
  stage("batch_save", full_mb,
        [&] { ipscope::io::SaveStoreFile(full, batch_file.string()); });

  auto opened = ipscope::ingest::Session::Open(store_dir.string(), days);
  if (!opened.ok()) {
    std::cerr << "FAIL: " << opened.error().ToString() << "\n";
    return 1;
  }
  ipscope::ingest::Session session = std::move(opened).value();
  std::uint64_t delta_bytes = 0;
  stage("session_bulk", 0, [&] {
    auto r = session.Append(bulk, "bulk");
    if (!r.ok()) throw std::runtime_error(r.error().ToString());
  });
  stage("delta_append", 0, [&] {
    auto r = session.Append(last_day, "day-final");
    if (!r.ok()) throw std::runtime_error(r.error().ToString());
    delta_bytes = r.value().shard_bytes;
  });
  stages.back().mbytes = static_cast<double>(delta_bytes) / 1e6;
  stage("delta_replay", 0, [&] {
    auto r = session.Append(last_day, "day-final");
    if (!r.ok() || r.value().applied) {
      throw std::runtime_error("replay was not an idempotent no-op");
    }
  });

  std::string sharded_image;
  stage("sharded_load", full_mb, [&] {
    auto r = session.Load();
    if (!r.ok()) throw std::runtime_error(r.error().ToString());
    sharded_image = StoreBytes(r.value());
  });
  stage("single_load", full_mb, [&] {
    auto loaded = ipscope::io::LoadStoreFile(batch_file.string());
    if (loaded.BlockCount() != full.BlockCount()) {
      throw std::runtime_error("batch reload lost blocks");
    }
  });

  if (sharded_image != StoreBytes(full)) {
    std::cerr << "FAIL: composed sharded store is not bit-identical to the "
                 "batch build\n";
    return 1;
  }
  std::cout << "determinism: sharded compose is bit-identical to the batch "
               "build ("
            << full.BlockCount() << " blocks, " << days << " days)\n\n";

  std::printf("%-14s %10s %12s\n", "stage", "seconds", "MB/s");
  for (const StageResult& st : stages) {
    std::printf("%-14s %10.4f", st.name.c_str(), st.seconds);
    if (st.mbytes > 0 && st.seconds > 0) {
      std::printf(" %12.1f", st.mbytes / st.seconds);
    }
    std::printf("\n");
  }
  double batch = stages[0].seconds, delta = stages[2].seconds;
  if (delta > 0) {
    std::printf("%-14s %9.1fx  (batch_save / delta_append)\n",
                "incremental", batch / delta);
  }

  std::ostringstream doc;
  WriteJson(doc, config, stages, total);
  if (auto error = ipscope::io::WriteFileAtomic("BENCH_ingest.json",
                                                doc.view())) {
    std::cerr << "FAIL: " << *error << "\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_ingest.json\n";
  fs::remove_all(root);
  return 0;
}
