// Reputation-TTL policy evaluation (paper §8, security implications):
// a fixed abuser population misbehaves through churning addresses; each
// expiry policy trades collateral damage (innocent holders blocked)
// against abuser coverage. The paper's proposal — TTLs derived from the
// block's assignment pattern plus change-triggered resets — is scored
// against fixed TTLs and the never-expire strawman.
#include <iostream>

#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"
#include "security/reputation.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 1500)};
  bench::PrintWorldBanner(world);
  cdn::Observatory daily = cdn::Observatory::Daily(world);

  std::cout << "=== Reputation expiry policies under address churn ===\n";
  std::cout << "(1% of subscribers abuse; blocklist trained on the full "
               "period, scored on the last 8 weeks)\n\n";

  report::Table t({"policy", "blocked abusers", "miss rate",
                   "innocent blocked", "false-positive rate"});
  auto add = [&](security::TtlPolicy policy, double ttl,
                 const char* label) {
    auto eval =
        security::EvaluateReputationPolicy(daily, policy, ttl);
    t.AddRow({label, report::FormatCount(eval.blocked_abuser),
              report::FormatPercent(eval.MissRate()),
              report::FormatCount(eval.blocked_innocent),
              report::FormatPercent(eval.FalsePositiveRate())});
  };
  add(security::TtlPolicy::kNever, 0, "never expire");
  add(security::TtlPolicy::kFixed, 30, "fixed 30d");
  add(security::TtlPolicy::kFixed, 7, "fixed 7d");
  add(security::TtlPolicy::kFixed, 1, "fixed 1d");
  add(security::TtlPolicy::kPattern, 0, "pattern TTL (paper)");
  add(security::TtlPolicy::kPatternReset, 0, "pattern TTL + change reset");
  t.Print(std::cout);

  std::cout << "\n[paper §8: reputations must expire on the block's "
               "reassignment timescale — static blocks can hold them for "
               "weeks, 24h pools for a day, gateways barely at all; the "
               "change detector triggers resets on renumbering]\n";
  return 0;
}
