// Regenerates Table 1: totals and per-snapshot averages of the daily and
// weekly datasets (IPs, /24s, ASes).
#include <iostream>

#include "analysis/table1_datasets.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  ipscope::bgp::RoutingFeed feed{world};
  auto result = ipscope::analysis::RunTable1(world, feed);
  ipscope::analysis::PrintTable1(result, std::cout);
  return 0;
}
