// Regenerates Table 2: Jan/Feb vs Nov/Dec appear/disappear analysis with
// whole-/24 fractions and BGP transition breakdown.
#include <iostream>

#include "analysis/table2_longterm.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto weekly = ipscope::cdn::Observatory::Weekly(world).BuildStore();
  ipscope::bgp::RoutingFeed feed{world};
  auto result = ipscope::analysis::RunTable2(weekly, feed);
  ipscope::analysis::PrintTable2(result, std::cout);
  return 0;
}
