// The Zander et al. (IMC 2014) baseline: capture-recapture estimation of
// the total active address population from partial observations. The paper
// (§8) counts 1.2B active addresses and notes this agrees with Zander's
// statistical estimate; here we validate the estimator against the
// simulator's ground-truth population — two-sample Chapman from pairs of
// weekly snapshots, and multi-occasion Schnabel over the year.
#include <iostream>
#include <vector>

#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"
#include "stats/capture_recapture.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv)};
  bench::PrintWorldBanner(world);

  auto weekly = cdn::Observatory::Weekly(world).BuildStore();
  net::Ipv4Set full_year = weekly.ActiveSet(0, weekly.days());
  std::uint64_t truth = full_year.Count();

  std::cout << "=== Capture-recapture vs ground truth ===\n";
  std::cout << "true yearly active population: " << report::FormatCount(truth)
            << "\n\n";

  report::Table t({"estimator", "occasions", "estimate", "error"});
  auto add = [&](const char* name, const char* occ, double est) {
    double err = truth ? (est - static_cast<double>(truth)) /
                             static_cast<double>(truth)
                       : 0.0;
    t.AddRow({name, occ, report::FormatSi(est), report::FormatPercent(err)});
  };

  // Chapman from week pairs at increasing separation.
  for (int gap : {1, 4, 13, 26}) {
    net::Ipv4Set w1 = weekly.ActiveSet(10, 11);
    net::Ipv4Set w2 = weekly.ActiveSet(10 + gap, 11 + gap);
    auto est = stats::Chapman(w1.Count(), w2.Count(), w1.CountIntersect(w2));
    add("Chapman", ("weeks 10," + std::to_string(10 + gap)).c_str(),
        est.population);
  }

  // Schnabel over every 4th week.
  std::vector<std::uint64_t> catches, recaptures, marked_before;
  net::Ipv4Set marked;
  for (int w = 0; w < weekly.days(); w += 4) {
    net::Ipv4Set caught = weekly.ActiveSet(w, w + 1);
    catches.push_back(caught.Count());
    recaptures.push_back(caught.CountIntersect(marked));
    marked_before.push_back(marked.Count());
    marked = marked.Union(caught);
  }
  auto schnabel = stats::Schnabel(catches, recaptures, marked_before);
  add("Schnabel", "13 x every 4th week", schnabel.population);
  t.Print(std::cout);

  std::cout << "\n[paper §8: the 1.2B direct count agrees with Zander's "
               "capture-recapture estimate, 'boding well' for sampling-based "
               "estimation — here quantified against ground truth.]\n"
            << "Note: weekly snapshots violate the closed-population "
               "assumption (churn!), so single-pair Chapman estimates "
               "undershoot the yearly population; multi-occasion Schnabel "
               "closes most of the gap.\n";
  return 0;
}
