// Diurnal phase inference per country ("When the Internet Sleeps",
// Quan et al., the paper's ref [30]): raw-log timestamps alone reveal each
// country's local-time phase. We histogram UTC request hours per country,
// locate the peak, and recover the UTC offset — scored against the
// simulator's ground-truth offsets.
#include <array>
#include <iostream>
#include <map>
#include <vector>

#include "cdn/observatory.h"
#include "cdn/rawlog.h"
#include "common.h"
#include "geo/country.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 1000)};
  bench::PrintWorldBanner(world);

  cdn::Observatory daily = cdn::Observatory::Daily(world);
  cdn::RawLogGenerator raw{world, daily.spec()};

  // Histogram UTC request hours per country over one week, capping records
  // per address so gateways do not drown the signal.
  std::map<int, std::array<std::uint64_t, 24>> hours_by_country;
  std::map<int, std::uint64_t> records_by_country;
  for (const sim::BlockPlan& plan : world.blocks()) {
    if (!sim::IsClientPolicy(plan.base.kind) || plan.country < 0) continue;
    for (int step = 0; step < 7; ++step) {
      raw.ForBlockStep(plan, step, [&](const cdn::LogRecord& r) {
        ++hours_by_country[plan.country][(r.unix_time / 3600) % 24];
        ++records_by_country[plan.country];
      }, /*per_address_cap=*/3);
    }
  }

  // The local diurnal curve peaks at 20:00; a UTC peak at hour H implies
  // an offset of (20 - H) mod 24 (normalized into [-11, 12]).
  const auto countries = geo::Countries();
  std::cout << "=== Per-country diurnal phase recovered from raw logs ===\n";
  report::Table t({"country", "records", "UTC peak hour", "inferred offset",
                   "true offset"});
  int scored = 0, correct = 0;
  for (const auto& [country, hours] : hours_by_country) {
    if (records_by_country[country] < 20000) continue;  // too noisy
    int peak = 0;
    for (int h = 1; h < 24; ++h) {
      if (hours[static_cast<std::size_t>(h)] >
          hours[static_cast<std::size_t>(peak)]) {
        peak = h;
      }
    }
    int inferred = (20 - peak + 48) % 24;
    if (inferred > 12) inferred -= 24;
    int truth =
        countries[static_cast<std::size_t>(country)].utc_offset_hours;
    ++scored;
    if (std::abs(inferred - truth) <= 1) ++correct;
    t.AddRow({std::string{countries[static_cast<std::size_t>(country)].code},
              report::FormatCount(records_by_country[country]),
              std::to_string(peak), std::to_string(inferred),
              std::to_string(truth)});
  }
  t.Print(std::cout);
  std::cout << "\noffsets recovered within +-1h: " << correct << "/"
            << scored
            << "   [ref 30 infers sleep cycles from probe responses; here "
               "the CDN's own request timestamps carry the same signal]\n";
  return 0;
}
