// Regenerates Fig 3: visibility per RIR (3a) and per country with
// subscriber-rank annotations (3b).
#include <iostream>

#include "analysis/fig3_geography.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto store = ipscope::cdn::Observatory::Daily(world).BuildStore();
  auto result = ipscope::analysis::RunFig3(world, store);
  ipscope::analysis::PrintFig3(result, std::cout);
  return 0;
}
