// Microbenchmarks of the core data structures and kernels (google-benchmark).
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "activity/churn.h"
#include "activity/eventsize.h"
#include "activity/matrix.h"
#include "bgp/table.h"
#include "cdn/observatory.h"
#include "io/store_io.h"
#include "netbase/ip_set.h"
#include "scan/zmap_order.h"
#include "netbase/prefix_trie.h"
#include "rng/rng.h"
#include "sim/world.h"

namespace {

using namespace ipscope;

const sim::World& SharedWorld() {
  static sim::World world{[] {
    sim::WorldConfig config;
    config.target_client_blocks = 500;
    return config;
  }()};
  return world;
}

void BM_TrieInsert(benchmark::State& state) {
  rng::Xoshiro256 g{42};
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 10000; ++i) {
    prefixes.emplace_back(net::IPv4Addr{static_cast<std::uint32_t>(g())},
                          8 + static_cast<int>(g.NextBounded(17)));
  }
  for (auto _ : state) {
    net::PrefixTrie<std::uint32_t> trie;
    for (const auto& p : prefixes) trie.Insert(p, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLongestMatch(benchmark::State& state) {
  rng::Xoshiro256 g{42};
  net::PrefixTrie<std::uint32_t> trie;
  for (int i = 0; i < 10000; ++i) {
    trie.Insert(net::Prefix{net::IPv4Addr{static_cast<std::uint32_t>(g())},
                            8 + static_cast<int>(g.NextBounded(17))},
                static_cast<std::uint32_t>(i));
  }
  std::uint64_t found = 0;
  for (auto _ : state) {
    auto match = trie.LongestMatch(net::IPv4Addr{
        static_cast<std::uint32_t>(g())});
    found += match.has_value();
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch);

void BM_Ipv4SetUnion(benchmark::State& state) {
  rng::Xoshiro256 g{7};
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < 100000; ++i) {
    a.push_back(static_cast<std::uint32_t>(g()));
    b.push_back(static_cast<std::uint32_t>(g()));
  }
  net::Ipv4Set sa = net::Ipv4Set::FromValues(a);
  net::Ipv4Set sb = net::Ipv4Set::FromValues(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.Union(sb).Count());
  }
}
BENCHMARK(BM_Ipv4SetUnion);

void BM_MatrixStu(benchmark::State& state) {
  activity::ActivityMatrix m{112};
  rng::Xoshiro256 g{3};
  for (int d = 0; d < 112; ++d) {
    for (int h = 0; h < 256; ++h) {
      if (g.NextBool(0.5)) m.Set(d, h);
    }
  }
  for (auto _ : state) benchmark::DoNotOptimize(m.Stu(0, 112));
}
BENCHMARK(BM_MatrixStu);

void BM_GenerateStepDay(benchmark::State& state) {
  const sim::World& world = SharedWorld();
  sim::StepSpec spec;
  spec.start_day = 228;
  spec.step_days = 1;
  spec.steps = 112;
  spec.world_seed = world.config().seed;
  activity::DayBits bits;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& plan = world.blocks()[i++ % world.blocks().size()];
    sim::GenerateStep(plan, spec, static_cast<int>(i % 112), bits, nullptr);
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_GenerateStepDay);

void BM_IsolatingMask(benchmark::State& state) {
  rng::Xoshiro256 g{11};
  std::vector<std::uint32_t> members;
  for (int i = 0; i < 200000; ++i) {
    members.push_back(static_cast<std::uint32_t>(g()));
  }
  net::Ipv4Set set = net::Ipv4Set::FromValues(members);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    net::IPv4Addr addr{static_cast<std::uint32_t>(g())};
    if (!set.Contains(addr)) {
      acc += static_cast<std::uint64_t>(
          activity::SmallestIsolatingMask(set, addr));
    }
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_IsolatingMask);

void BM_DailyStoreBuild(benchmark::State& state) {
  const sim::World& world = SharedWorld();
  for (auto _ : state) {
    auto store = cdn::Observatory::Daily(world).BuildStore();
    benchmark::DoNotOptimize(store.BlockCount());
  }
}
BENCHMARK(BM_DailyStoreBuild)->Unit(benchmark::kMillisecond);

void BM_StoreSerializeRoundTrip(benchmark::State& state) {
  const sim::World& world = SharedWorld();
  auto store = cdn::Observatory::Daily(world).BuildStore();
  for (auto _ : state) {
    std::stringstream buffer;
    io::SaveStore(store, buffer);
    auto loaded = io::LoadStore(buffer);
    benchmark::DoNotOptimize(loaded.BlockCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(store.BlockCount()));
}
BENCHMARK(BM_StoreSerializeRoundTrip)->Unit(benchmark::kMillisecond);

void BM_ZmapPermutation(benchmark::State& state) {
  scan::AddressPermutation perm{42};
  std::uint32_t i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += perm.AddressAt(i++).value();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZmapPermutation);

void BM_ChurnWindow7(benchmark::State& state) {
  const sim::World& world = SharedWorld();
  auto store = cdn::Observatory::Daily(world).BuildStore();
  activity::ChurnAnalyzer churn{store};
  for (auto _ : state) {
    benchmark::DoNotOptimize(churn.Churn(7).up.median);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(store.BlockCount()));
}
BENCHMARK(BM_ChurnWindow7)->Unit(benchmark::kMillisecond);

}  // namespace
