// Ablation: sensitivity of the relative-host-count measure to the UA
// sampling rate.
//
// The paper stores 1 of every 4096 User-Agent headers (§6.3) and uses
// unique strings per /24 as a *relative* host count. How robust is that
// proxy to the sampling interval? We sweep the rate and report (a) the
// rank correlation between sampled unique-UA counts and the true UA pool
// sizes and (b) gateway-region detection quality.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "cdn/observatory.h"
#include "cdn/useragent.h"
#include "common.h"
#include "report/table.h"
#include "stats/summary.h"

namespace {

// Spearman rank correlation (ties broken by order; fine at these sizes).
double SpearmanRank(std::vector<double> x, std::vector<double> y) {
  auto ranks = [](std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      r[order[pos]] = static_cast<double>(pos);
    }
    return r;
  };
  auto rx = ranks(x);
  auto ry = ranks(y);
  return ipscope::stats::PearsonCorrelation(rx, ry);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);

  auto daily = cdn::Observatory::Daily(world);
  const int days = daily.steps();
  const int month_first = days - 28;

  // Collect per-block month hits + truth once.
  struct BlockInfo {
    const sim::BlockPlan* plan;
    std::uint64_t month_hits;
  };
  std::vector<BlockInfo> blocks;
  daily.ForEachBlockHits([&](const sim::BlockPlan& plan,
                             const activity::ActivityMatrix&,
                             std::span<const std::uint32_t> hits) {
    std::uint64_t month = 0;
    for (int d = month_first; d < days; ++d) {
      for (int h = 0; h < 256; ++h) {
        month += hits[static_cast<std::size_t>(d) * 256 +
                      static_cast<std::size_t>(h)];
      }
    }
    blocks.push_back({&plan, month});
  });

  std::cout << "=== UA sampling-rate sensitivity (paper: 1/4096) ===\n\n";
  report::Table t({"rate", "blocks sampled", "rank corr. vs true hosts",
                   "gateway precision", "gateway recall"});
  for (std::uint32_t interval : {512u, 2048u, 4096u, 16384u, 65536u}) {
    cdn::UserAgentSampler sampler{1.0 / interval};
    std::vector<double> sampled, truth;
    std::uint64_t gw_tagged = 0, gw_correct = 0, gw_truth = 0;
    for (const BlockInfo& info : blocks) {
      auto sample = sampler.Sample(*info.plan, info.month_hits);
      bool truly_gateway =
          info.plan->base.kind == sim::PolicyKind::kCgnGateway;
      if (truly_gateway) ++gw_truth;
      if (sample.samples == 0) continue;
      sampled.push_back(static_cast<double>(sample.unique_uas));
      truth.push_back(static_cast<double>(
          cdn::UserAgentSampler::UaPoolSize(*info.plan)));
      bool flagged = sample.samples >= 500.0 * 4096.0 / interval &&
                     sample.unique_uas >=
                         0.3 * static_cast<double>(sample.samples);
      if (flagged) {
        ++gw_tagged;
        if (truly_gateway) ++gw_correct;
      }
    }
    double corr = SpearmanRank(sampled, truth);
    t.AddRow({"1/" + std::to_string(interval),
              report::FormatCount(sampled.size()),
              report::FormatDouble(corr),
              report::FormatPercent(
                  gw_tagged ? static_cast<double>(gw_correct) / gw_tagged
                            : 0.0),
              report::FormatPercent(
                  gw_truth ? static_cast<double>(gw_correct) / gw_truth
                           : 0.0)});
  }
  t.Print(std::cout);
  std::cout << "\n[the relative host-count ranking is robust down to sparse "
               "sampling; very coarse rates lose small residential blocks "
               "first while gateway detection degrades gracefully — "
               "supporting the paper's 1/4096 choice]\n";
  return 0;
}
