// Regenerates Fig 4: daily activity/up/down events (4a), churn vs window
// size (4b), and year-long appear/disappear vs the first week (4c).
#include <iostream>

#include "analysis/fig4_churn.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto daily = ipscope::cdn::Observatory::Daily(world).BuildStore();
  auto weekly = ipscope::cdn::Observatory::Weekly(world).BuildStore();
  auto result = ipscope::analysis::RunFig4(daily, weekly);
  ipscope::analysis::PrintFig4(result, std::cout);
  return 0;
}
