// Regenerates Figs 6 & 7: the block activity-pattern gallery, plus the
// pattern-classifier-vs-ground-truth confusion matrix.
#include <iostream>

#include "analysis/fig6_patterns.h"
#include "cdn/observatory.h"
#include "common.h"

int main(int argc, char** argv) {
  ipscope::sim::World world{ipscope::bench::ConfigFromArgs(argc, argv)};
  ipscope::bench::PrintWorldBanner(world);
  auto store = ipscope::cdn::Observatory::Daily(world).BuildStore();
  auto result = ipscope::analysis::RunFig6(world, store);
  ipscope::analysis::PrintFig6(result, std::cout);
  return 0;
}
