// Robustness check: the reproduction's headline shapes must hold across
// world seeds, not just the default one. Runs the key metrics at five
// seeds and reports min/mean/max next to the paper's bands.
#include <iostream>
#include <vector>

#include "activity/change.h"
#include "activity/churn.h"
#include "activity/metrics.h"
#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"
#include "scan/icmp.h"

namespace {

struct Metrics {
  double daily_up_median;
  double weekly_up_median;
  double fd_above_250;
  double fd_below_64;
  double major_change;
  double cdn_missed_by_icmp;
};

struct Band {
  double min = 1e18, max = -1e18, sum = 0;
  void Add(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ipscope;
  auto base = bench::ConfigFromArgs(argc, argv, 1200);
  std::cout << "=== Headline metrics across 5 seeds ("
            << base.target_client_blocks << " client blocks each) ===\n\n";

  std::vector<Metrics> runs;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    sim::WorldConfig config = base;
    config.seed = seed * 7919;
    sim::World world{config};
    auto store = cdn::Observatory::Daily(world).BuildStore();

    Metrics m{};
    activity::ChurnAnalyzer churn{store};
    m.daily_up_median = churn.Churn(1).up.median;
    m.weekly_up_median = churn.Churn(7).up.median;

    auto metrics = activity::ComputeBlockMetrics(store);
    double above = 0, below = 0;
    for (const auto& b : metrics) {
      above += b.filling_degree > 250;
      below += b.filling_degree < 64;
    }
    m.fd_above_250 = 100.0 * above / static_cast<double>(metrics.size());
    m.fd_below_64 = 100.0 * below / static_cast<double>(metrics.size());
    m.major_change =
        100.0 * activity::MajorChangeFraction(
                    activity::MaxMonthlyStuChange(store));

    net::Ipv4Set cdn = store.ActiveSet(45, 76);
    net::Ipv4Set icmp = scan::IcmpScanner{world}.ScanMonth(273, 31, 8);
    m.cdn_missed_by_icmp =
        100.0 * (1.0 - static_cast<double>(cdn.CountIntersect(icmp)) /
                           static_cast<double>(cdn.Count()));
    runs.push_back(m);
  }

  report::Table t({"metric", "min", "mean", "max", "paper"});
  auto row = [&](const char* name, auto field, const char* paper) {
    Band band;
    for (const Metrics& m : runs) band.Add(m.*field);
    t.AddRow({name, report::FormatDouble(band.min),
              report::FormatDouble(band.sum / static_cast<double>(runs.size())),
              report::FormatDouble(band.max), paper});
  };
  row("daily up-event % (median)", &Metrics::daily_up_median, "~8");
  row("weekly up-event % (median)", &Metrics::weekly_up_median, "~5");
  row("% blocks FD>250", &Metrics::fd_above_250, "~50");
  row("% blocks FD<64", &Metrics::fd_below_64, "~30");
  row("% blocks major STU change", &Metrics::major_change, "9.8");
  row("% CDN hosts missed by ICMP", &Metrics::cdn_missed_by_icmp, ">40");
  t.Print(std::cout);
  std::cout << "\n[narrow seed-to-seed bands mean the reproduced shapes are "
               "properties of the mechanisms, not of one lucky seed]\n";
  return 0;
}
