// Ablation: how many scan snapshots does an active census need?
//
// The paper compares one month of CDN logs against the union of 8 ICMP
// snapshots and acknowledges the snapshot count biases the comparison
// (§3.2). Sweeping the number of scans quantifies that: each additional
// snapshot catches more intermittently-online hosts, with diminishing
// returns, while the CDN-only share stays dominated by never-responding
// (NAT/firewalled) hosts.
#include <iostream>

#include "cdn/observatory.h"
#include "common.h"
#include "report/table.h"
#include "scan/icmp.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  sim::World world{bench::ConfigFromArgs(argc, argv, 2000)};
  bench::PrintWorldBanner(world);

  auto store = cdn::Observatory::Daily(world).BuildStore();
  net::Ipv4Set cdn = store.ActiveSet(45, 76);  // October
  scan::IcmpScanner scanner{world};

  std::cout << "=== ICMP census coverage vs number of scans (October) ===\n";
  std::cout << "CDN-active addresses in the month: " << cdn.Count() << "\n\n";
  report::Table t({"scans", "ICMP total", "CDN & ICMP", "CDN missed",
                   "ICMP only"});
  for (int scans : {1, 2, 4, 8, 16}) {
    net::Ipv4Set icmp = scanner.ScanMonth(273, 31, scans);
    std::uint64_t both = cdn.CountIntersect(icmp);
    double missed = cdn.Count()
                        ? 1.0 - static_cast<double>(both) /
                                    static_cast<double>(cdn.Count())
                        : 0.0;
    t.AddRow({std::to_string(scans), report::FormatCount(icmp.Count()),
              report::FormatCount(both), report::FormatPercent(missed),
              report::FormatCount(icmp.Count() - both)});
  }
  t.Print(std::cout);
  std::cout << "\n[doubling the scan count keeps shrinking the miss rate "
               "only slightly: the bulk of invisible hosts never answer "
               "ICMP at all — the paper's '>40% missed' is structural, not "
               "a sampling artifact]\n";
  return 0;
}
