// Canonical end-to-end pipeline benchmark: world build -> store build ->
// save/load -> churn -> change detection -> pattern classification, swept
// over thread counts {1, 2, ceil(half), all} (deduplicated), so the
// speedup section of bench-JSON v2 is measured data. Prints a per-stage
// table and writes BENCH_pipeline.json (per-stage wall seconds, MB/s where
// a byte volume is defined, and parallel speedup) so perf trajectories can
// be compared across commits. Every stage result is fingerprinted —
// including a hash of the serialized store image — and cross-checked
// across thread counts AND against the retained per-step generation
// reference (GenerateStep), so the benchmark fails loudly if parallelism
// or the slot-major batch kernels change a single output bit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "activity/change.h"
#include "activity/churn.h"
#include "analysis/fig6_patterns.h"
#include "cdn/observatory.h"
#include "common.h"
#include "io/atomic_file.h"
#include "io/store_io.h"
#include "par/pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StageResult {
  std::string name;
  double seconds = 0;
  double mbytes = 0;  // bytes processed / 1e6, 0 when not meaningful
};

// Shared-pool activity during one run, as registry deltas: how many chunks
// the stages pushed through the pool, how much stealing the imbalance
// forced, and how the work spread over participant slots.
struct PoolTelemetry {
  std::uint64_t regions = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  double imbalance_ratio = 0;  // last region of the run
  std::vector<double> worker_busy_seconds;  // per participant slot
  std::vector<double> worker_idle_seconds;
};

struct RunResult {
  int threads = 1;
  std::vector<StageResult> stages;
  double total_seconds = 0;
  PoolTelemetry pool;
  // Output fingerprint: any cross-thread-count divergence is a determinism
  // bug, not noise.
  std::uint64_t fingerprint = 0;
  // Hash of the serialized IPSCOPE2 store image — byte-exact identity of
  // the built store, compared across thread counts and kernel paths.
  std::uint64_t store_hash = 0;
};

std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Mix(std::uint64_t& fp, std::uint64_t v) {
  fp ^= v + 0x9e3779b97f4a7c15ULL + (fp << 6) + (fp >> 2);
}

void MixDouble(std::uint64_t& fp, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  Mix(fp, bits);
}

RunResult RunPipeline(const ipscope::sim::WorldConfig& config, int threads) {
  namespace par = ipscope::par;
  par::GlobalPool().Resize(threads);
  RunResult run;
  run.threads = threads;

  // Pool counters/gauges are process-cumulative; deltas isolate this run.
  auto& registry = ipscope::obs::GlobalRegistry();
  auto worker_gauge = [&](int slot, const char* kind) {
    return registry
        .GetGauge("par.pool.worker." + std::to_string(slot) + "." + kind)
        .value();
  };
  const std::uint64_t regions0 =
      registry.GetCounter("par.pool.regions").value();
  const std::uint64_t tasks0 =
      registry.GetCounter("par.pool.tasks_executed").value();
  const std::uint64_t steals0 =
      registry.GetCounter("par.pool.steals").value();
  std::vector<double> busy0, idle0;
  for (int s = 0; s < threads; ++s) {
    busy0.push_back(worker_gauge(s, "busy_seconds"));
    idle0.push_back(worker_gauge(s, "idle_seconds"));
  }

  auto stage = [&](const std::string& name, double mbytes, auto&& fn) {
    auto start = Clock::now();
    fn();
    run.stages.push_back(StageResult{name, SecondsSince(start), mbytes});
    run.total_seconds += run.stages.back().seconds;
  };

  // Stage 1: world build (serial by design; included so the end-to-end
  // total reflects what a CLI user actually waits for).
  std::unique_ptr<ipscope::sim::World> world;
  stage("world_build", 0, [&] {
    world = std::make_unique<ipscope::sim::World>(config);
  });

  // Stage 2: activity-store build (the pool's flagship consumer).
  ipscope::activity::ActivityStore store{1};
  stage("store_build", 0, [&] {
    store = ipscope::cdn::Observatory::Daily(*world).BuildStore();
  });

  // Stages 3-4: serialize + parse the IPSCOPE2 image in memory, so the
  // numbers measure the codec, not the container's filesystem.
  std::string image;
  stage("store_save", 0, [&] {
    std::ostringstream os;
    ipscope::io::SaveStore(store, os);
    image = std::move(os).str();
  });
  double store_mb = static_cast<double>(image.size()) / 1e6;
  run.stages.back().mbytes = store_mb;   // store_save
  run.stages[1].mbytes = store_mb;       // store_build emits the same volume
  run.store_hash = Fnv1a(image);
  Mix(run.fingerprint, run.store_hash);
  stage("store_load", store_mb, [&] {
    std::istringstream is{image};
    auto loaded = ipscope::io::TryLoadStore(is);
    if (!loaded.ok()) throw std::runtime_error("store reload failed");
    Mix(run.fingerprint, loaded.value().store.CountActive(0, store.days()));
  });

  // Stage 5: churn analyses (Fig 4 family).
  stage("churn", 0, [&] {
    ipscope::activity::ChurnAnalyzer analyzer{store};
    auto weekly = analyzer.Churn(7);
    auto daily = analyzer.DailyEvents();
    auto versus = analyzer.VersusFirst(7);
    for (double v : weekly.up_pct) MixDouble(run.fingerprint, v);
    for (double v : weekly.down_pct) MixDouble(run.fingerprint, v);
    for (std::int64_t v : daily.active) {
      Mix(run.fingerprint, static_cast<std::uint64_t>(v));
    }
    for (std::uint64_t v : versus.appear) Mix(run.fingerprint, v);
  });

  // Stage 6: change detection (Table 2 family).
  stage("change", 0, [&] {
    auto stu = ipscope::activity::MaxMonthlyStuChange(store, 28);
    auto spatial = ipscope::activity::SpatialStuChanges(store, 28);
    for (const auto& c : stu) MixDouble(run.fingerprint, c.max_delta);
    for (const auto& c : spatial) {
      MixDouble(run.fingerprint, c.lower_delta);
      MixDouble(run.fingerprint, c.upper_delta);
    }
  });

  // Stage 7: pattern classification (Fig 6/7).
  stage("patterns", 0, [&] {
    auto fig6 = ipscope::analysis::RunFig6(*world, store);
    for (const auto& row : fig6.confusion) {
      for (std::uint64_t v : row) Mix(run.fingerprint, v);
    }
    Mix(run.fingerprint, fig6.exemplars.size());
  });

  run.pool.regions = registry.GetCounter("par.pool.regions").value() - regions0;
  run.pool.tasks_executed =
      registry.GetCounter("par.pool.tasks_executed").value() - tasks0;
  run.pool.steals = registry.GetCounter("par.pool.steals").value() - steals0;
  run.pool.imbalance_ratio =
      registry.GetGauge("par.pool.imbalance_ratio").value();
  for (int s = 0; s < threads; ++s) {
    run.pool.worker_busy_seconds.push_back(worker_gauge(s, "busy_seconds") -
                                           busy0[static_cast<std::size_t>(s)]);
    run.pool.worker_idle_seconds.push_back(worker_gauge(s, "idle_seconds") -
                                           idle0[static_cast<std::size_t>(s)]);
  }
  return run;
}

void WriteDoubleArray(std::ostream& os, const std::vector<double>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? ", " : "") << values[i];
  }
  os << "]";
}

// Bench-JSON schema v2: schema_version + hardware fingerprint (what
// `ipscope_cli benchdiff` keys its comparability check on) + per-run shared
// pool telemetry next to the stage timings.
void WriteJson(std::ostream& os, const ipscope::sim::WorldConfig& cfg,
               const std::vector<RunResult>& runs) {
  os << "{\n  \"bench\": \"pipeline\",\n"
     << "  \"schema_version\": 2,\n"
     << "  \"client_blocks\": " << cfg.target_client_blocks << ",\n"
     << "  \"seed\": " << cfg.seed << ",\n"
     << "  \"unix_time\": " << std::time(nullptr) << ",\n";
  ipscope::bench::WriteHardwareJson(
      os, ipscope::bench::DetectHardware());
  os << ",\n  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const RunResult& run = runs[r];
    os << "    {\"threads\": " << run.threads << ", \"total_seconds\": "
       << run.total_seconds << ", \"stages\": {\n";
    for (std::size_t s = 0; s < run.stages.size(); ++s) {
      const StageResult& st = run.stages[s];
      os << "      \"" << st.name << "\": {\"seconds\": " << st.seconds;
      if (st.mbytes > 0) {
        os << ", \"mb\": " << st.mbytes
           << ", \"mb_per_s\": " << st.mbytes / st.seconds;
      }
      os << "}" << (s + 1 < run.stages.size() ? "," : "") << "\n";
    }
    os << "    }, \"pool\": {\"regions\": " << run.pool.regions
       << ", \"tasks_executed\": " << run.pool.tasks_executed
       << ", \"steals\": " << run.pool.steals
       << ", \"imbalance_ratio\": " << run.pool.imbalance_ratio
       << ", \"worker_busy_seconds\": ";
    WriteDoubleArray(os, run.pool.worker_busy_seconds);
    os << ", \"worker_idle_seconds\": ";
    WriteDoubleArray(os, run.pool.worker_idle_seconds);
    os << "}}" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  // A speedup ratio needs two distinct thread counts. On a 1-hardware-
  // thread host the sweep collapses to a single run, and serial/parallel
  // would alias the same measurement — every stage would read "1x", which
  // looks like "no scaling" when it means "not measured". Mark such
  // reports baseline_only instead; benchdiff treats the absent block as
  // advisory.
  if (runs.size() < 2) {
    os << "  ],\n  \"baseline_only\": true\n}\n";
    return;
  }
  os << "  ],\n  \"speedup\": {\n";
  const RunResult& serial = runs.front();
  const RunResult& parallel = runs.back();
  for (std::size_t s = 0; s < serial.stages.size(); ++s) {
    double speedup = parallel.stages[s].seconds > 0
                         ? serial.stages[s].seconds / parallel.stages[s].seconds
                         : 0.0;
    os << "    \"" << serial.stages[s].name << "\": " << speedup << ",\n";
  }
  os << "    \"total\": "
     << (parallel.total_seconds > 0
             ? serial.total_seconds / parallel.total_seconds
             : 0.0)
     << "\n  }\n}\n";
}

// The document above with insignificant whitespace removed — safe because
// the emitter never puts a raw newline inside a string (obs::json::Escape
// escapes them), so "\n followed by indent" is always structural.
std::string Minify(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] != '\n') {
      out += pretty[i];
      continue;
    }
    while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = ipscope::bench::ConfigFromArgs(argc, argv);
  int max_threads = ipscope::par::DefaultThreads();

  // Thread sweep: serial, 2, half, and all hardware threads (deduplicated),
  // so multi-core hosts record real scaling curves, not just the endpoints.
  std::vector<int> sweep{1};
  for (int t : {2, (max_threads + 1) / 2, max_threads}) {
    if (t > 1 && t <= max_threads &&
        std::find(sweep.begin(), sweep.end(), t) == sweep.end()) {
      sweep.push_back(t);
    }
  }
  std::sort(sweep.begin(), sweep.end());

  std::vector<RunResult> runs;
  for (int t : sweep) {
    std::cout << "pipeline: " << config.target_client_blocks
              << " client blocks, threads=" << t << "\n";
    runs.push_back(RunPipeline(config, t));
  }
  ipscope::par::GlobalPool().Resize(0);  // back to the default size

  std::printf("\n%-12s", "stage");
  for (const RunResult& run : runs) std::printf("  t=%-10d", run.threads);
  if (runs.size() > 1) std::printf("  speedup");
  std::printf("\n");
  for (std::size_t s = 0; s < runs.front().stages.size(); ++s) {
    std::printf("%-12s", runs.front().stages[s].name.c_str());
    for (const RunResult& run : runs) {
      std::printf("  %9.3fs  ", run.stages[s].seconds);
    }
    if (runs.size() > 1 && runs.back().stages[s].seconds > 0) {
      std::printf("  %5.2fx",
                  runs.front().stages[s].seconds / runs.back().stages[s].seconds);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "total");
  for (const RunResult& run : runs) std::printf("  %9.3fs  ", run.total_seconds);
  if (runs.size() > 1 && runs.back().total_seconds > 0) {
    std::printf("  %5.2fx",
                runs.front().total_seconds / runs.back().total_seconds);
  }
  std::printf("\n");

  for (const RunResult& run : runs) {
    if (run.fingerprint != runs.front().fingerprint) {
      std::cerr << "FAIL: results at threads=" << run.threads
                << " diverge from serial run (fingerprint "
                << run.fingerprint << " != " << runs.front().fingerprint
                << ")\n";
      return 1;
    }
  }
  std::cout << "\ndeterminism: all thread counts produced bit-identical "
               "results (fingerprint "
            << runs.front().fingerprint << ")\n";

  // Kernel-path cross-check: rebuild the store through the retained naive
  // per-(step, slot) reference kernel (GenerateStep) and require the
  // serialized image to be byte-identical to what the slot-major batch
  // kernels (GenerateBlock + arena store) produced in every run above.
  {
    ipscope::sim::World world{config};
    auto observatory = ipscope::cdn::Observatory::Daily(world);
    const ipscope::sim::StepSpec& spec = observatory.spec();
    ipscope::activity::ActivityStore naive{spec.steps};
    for (const ipscope::sim::BlockPlan& plan : world.blocks()) {
      ipscope::activity::ActivityMatrix m{spec.steps};
      bool any = false;
      for (int s = 0; s < spec.steps; ++s) {
        ipscope::activity::DayBits bits;
        ipscope::sim::GenerateStep(plan, spec, s, bits, nullptr);
        if ((bits[0] | bits[1] | bits[2] | bits[3]) == 0) continue;
        m.Row(s) = bits;
        any = true;
      }
      if (any) {
        naive.GetOrCreate(ipscope::net::BlockKeyOf(plan.block)) = std::move(m);
      }
    }
    std::ostringstream os;
    ipscope::io::SaveStore(naive, os);
    std::uint64_t naive_hash = Fnv1a(os.view());
    if (naive_hash != runs.front().store_hash) {
      std::cerr << "FAIL: slot-major batch kernels diverge from the "
                   "per-step reference (store image hash "
                << runs.front().store_hash << " != " << naive_hash << ")\n";
      return 1;
    }
    std::cout << "kernel path: batch kernels byte-identical to the per-step "
                 "reference (store image hash "
              << naive_hash << ")\n";
  }

  std::ostringstream doc;
  WriteJson(doc, config, runs);
  // Atomic (temp + rename): a crashed or out-of-space bench run must never
  // leave a torn report for benchdiff to misread as a regression.
  if (auto error =
          ipscope::io::WriteFileAtomic("BENCH_pipeline.json", doc.view())) {
    std::cerr << "FAIL: " << *error << "\n";
    return 1;
  }
  // Append-only perf trajectory: one minified v2 document per line, so a
  // long-running checkout accumulates its own benchmark history without a
  // separate collector.
  {
    std::ofstream history{"BENCH_history.jsonl", std::ios::app};
    history << Minify(doc.str()) << "\n";
    if (!history) {
      std::cerr << "FAIL: cannot append to BENCH_history.jsonl\n";
      return 1;
    }
  }
  std::cout << "wrote BENCH_pipeline.json (+ BENCH_history.jsonl)\n";
  return 0;
}
