// The paper's footnote 2: the IPv4 stagnation (Fig 1) coincides with IPv6
// growth — weekly active /64 counts doubled (200M -> 400M+) from Sep 2014
// to Sep 2015. This harness regenerates that companion series and contrasts
// its growth factor with the IPv4 series over the same year.
#include <iostream>
#include <vector>

#include "analysis/fig1_growth.h"
#include "common.h"
#include "report/table.h"
#include "report/textplot.h"
#include "sim/ipv6note.h"

int main(int argc, char** argv) {
  using namespace ipscope;
  auto config = bench::ConfigFromArgs(argc, argv);

  auto v6 = sim::GenerateIpv6Growth(config.seed);
  auto v4 = sim::GenerateGrowthHistory(config.seed);

  std::cout << "=== Footnote 2: weekly active IPv6 /64s, Sep 2014 - Sep "
               "2015 ===\n";
  std::vector<double> series;
  for (const auto& wc : v6.series) series.push_back(wc.active_slash64s);
  std::cout << "/64s:  " << report::RenderSparkline(series) << "\n";

  report::Table t({"quantity", "measured", "paper"});
  t.AddRow({"IPv6 /64s, Sep 2014",
            report::FormatSi(v6.series.front().active_slash64s), "~200M"});
  t.AddRow({"IPv6 /64s, Sep 2015",
            report::FormatSi(v6.series.back().active_slash64s), ">400M"});
  t.AddRow({"IPv6 yearly growth",
            report::FormatDouble(v6.yearly_growth_factor) + "x", "~2x"});

  // IPv4 over the same window (Sep 2014 = month index 80).
  double v4_start = v4.series[80].active_ips;
  double v4_end = v4.series[92].active_ips;
  t.AddRow({"IPv4 actives, same year",
            report::FormatSi(v4_start) + " -> " + report::FormatSi(v4_end),
            "stagnant"});
  t.AddRow({"IPv4 yearly growth",
            report::FormatDouble(v4_end / v4_start) + "x", "~1.0x"});
  t.Print(std::cout);
  std::cout << "\n[the paper's framing: IPv4 enumeration stopped measuring "
               "Internet growth precisely when IPv6 took over the growing]\n";
  return 0;
}
