#!/usr/bin/env bash
# Build, test, and regenerate every paper experiment into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)"

# One sanitizer pass over the test suite (ASan + UBSan) so concurrent code —
# notably the obs metrics registry — is race/UB-checked on every full run.
# Set IPSCOPE_SKIP_SANITIZERS=1 to skip (e.g. on memory-constrained hosts).
if [ "${IPSCOPE_SKIP_SANITIZERS:-0}" != "1" ]; then
  cmake -B build-san -G Ninja -DIPSCOPE_ASAN=ON -DIPSCOPE_UBSAN=ON
  cmake --build build-san --target ipscope_tests ipscope_fault_tests
  ctest --test-dir build-san -j"$(nproc)"

  # TSAN is incompatible with ASan, so it gets its own tree. The pass
  # covers the concurrency-bearing suites: the obs registry (Obs*), the
  # par::Pool scheduler, and the parallel determinism tests (Par*), with
  # oversubscribed thread counts to force real interleavings.
  cmake -B build-tsan -G Ninja -DIPSCOPE_TSAN=ON
  cmake --build build-tsan --target ipscope_tests ipscope_par_tests
  ctest --test-dir build-tsan -j"$(nproc)" -R '^(Obs|Par)'
fi

mkdir -p results

# Static-analysis gate: the project-contract linter must (a) prove every
# rule still fires on the committed corpus (--self-test) and (b) find zero
# unsuppressed violations in the tree. Either failure exits non-zero and
# fails the run (set -e). clang-tidy additionally runs inside lint.sh when
# installed. Findings print as file:line:rule; silence one only with an
# inline `// lint: <tag>(<justification>)` — see DESIGN.md §4.10.
echo "== lint gate"
build/tools/lint/ipscope_lint --self-test --corpus tests/lint_corpus \
  | tee results/lint_selftest.txt
build/tools/lint/ipscope_lint --root . --cache-dir build/lint-cache \
  --metrics-out results/lint_metrics.json | tee results/lint.txt
# clang-tidy pass (skipped with a warning when clang-tidy is absent).
scripts/lint.sh build >/dev/null

# Prove the lint gate has teeth: seed (a) an illegal upward include
# (sim -> serve) and (b) a statement-position call that discards an
# ipscope::Result, then require the scan to fail naming the exact rule at
# the exact file:line. The temp sources are removed on every exit path and
# never enter the build.
lint_teeth_cleanup() {
  rm -f src/sim/zz_lint_teeth.cc src/cli/zz_lint_teeth.cc
}
trap lint_teeth_cleanup EXIT
printf '%s\n' \
  '// lint-gate teeth: deliberately illegal upward dependency.' \
  '#include "serve/server.h"' > src/sim/zz_lint_teeth.cc
printf '%s\n' \
  '// lint-gate teeth: deliberately discarded Result.' \
  '#include "io/store_io.h"' \
  'void ZzLintTeeth() {' \
  '  ipscope::io::TryLoadStoreFile("zz-teeth-missing.store");' \
  '}' > src/cli/zz_lint_teeth.cc
if build/tools/lint/ipscope_lint --root . >results/lint_teeth.txt 2>&1; then
  echo "FATAL: lint gate accepted the seeded violations" >&2
  exit 1
fi
grep -q '^src/sim/zz_lint_teeth\.cc:2:.*\[layering\.illegal-dep\]' \
    results/lint_teeth.txt || {
  echo "FATAL: seeded sim->serve include not reported as" \
       "layering.illegal-dep at src/sim/zz_lint_teeth.cc:2" >&2
  exit 1
}
grep -q '^src/cli/zz_lint_teeth\.cc:4:.*\[errors\.discarded-result\]' \
    results/lint_teeth.txt || {
  echo "FATAL: seeded discarded Result not reported as" \
       "errors.discarded-result at src/cli/zz_lint_teeth.cc:4" >&2
  exit 1
}
lint_teeth_cleanup
trap - EXIT
echo "lint gate: seeded violations correctly caught"

# Warm-cache check: a second scan over the now-unchanged tree must serve
# every file from build/lint-cache and re-extract zero.
build/tools/lint/ipscope_lint --root . --cache-dir build/lint-cache \
  --metrics-out results/lint_metrics_warm.json >results/lint_warm.txt
grep -Eq '"lint\.facts_cached": 0(,|\})' results/lint_metrics_warm.json || {
  echo "FATAL: warm-cache lint rescan re-extracted changed files" >&2
  exit 1
}
echo "lint cache: warm rescan re-extracted 0 files"

# Correctness gate: the differential sweep re-derives every figure series
# with the naive check::reference oracles and compares the optimized
# pipeline exactly (seeds x thread counts x fault schedules), then verifies
# the committed golden snapshots in tests/golden/ against their CRC
# manifest. Non-zero exit on any divergence or stale golden fails the run
# (set -e). Refresh goldens deliberately with
# `build/tools/ipscope_cli check --update-goldens`.
echo "== differential check"
build/tools/ipscope_cli check | tee results/check.txt

# Chaos smoke pass: the full pipeline under the default fault schedule
# (dropped log days + store truncation + a killed scan snapshot) must
# survive, salvage every intact block, and pass its own scorecard.
echo "== chaos smoke"
build/tools/ipscope_cli chaos --seed 7 --blocks 800 | tee results/chaos.txt

# Crash-recovery gate: sweep every registered crash point of the sharded
# ingest commit protocol (src/ingest) x 3 seeds — kill a child process at
# the armed syscall boundary, then require recovery to land bit-exactly on
# the committed prefix and replay to converge. Non-zero exit fails the run.
echo "== chaos-crash gate"
build/tools/ipscope_cli chaos-crash --blocks 120 --seeds 3 \
  | tee results/chaos_crash.txt

# Prove the crash gate has teeth: IPSCOPE_INGEST_SKIP_ROLLBACK=1 enables a
# deliberately seeded recovery bug (orphaned shards are adopted as
# committed instead of quarantined); chaos-crash must catch the divergence.
if IPSCOPE_INGEST_SKIP_ROLLBACK=1 build/tools/ipscope_cli chaos-crash \
    --blocks 120 --seeds 1 --dir results/chaos_crash_teeth.dir \
    >results/chaos_crash_teeth.txt 2>&1; then
  echo "FATAL: chaos-crash accepted the seeded skip-rollback recovery bug" >&2
  exit 1
fi
rm -rf results/chaos_crash_teeth.dir
echo "chaos-crash gate: seeded recovery bug correctly caught"

# Serve smoke: spin up the query daemon on an ephemeral port, hammer it
# from a client swarm over real TCP, byte-compare every response against
# the DirectAnswer oracle, hot-reload the snapshot mid-run, and drain via
# SIGINT. Any divergent byte (including a stale snapshot id) exits 1.
echo "== serve smoke"
build/tools/ipscope_cli serve --smoke --blocks 400 --clients 4 \
  | tee results/serve_smoke.txt

# Prove the serve smoke has teeth: IPSCOPE_SERVE_SKIP_PIN=1 enables a
# deliberately seeded snapshot-isolation bug (the result cache keys on a
# stale snapshot id, so post-reload queries serve pre-reload bytes); the
# smoke must catch the divergence.
if IPSCOPE_SERVE_SKIP_PIN=1 build/tools/ipscope_cli serve --smoke \
    --blocks 400 --clients 4 >results/serve_smoke_teeth.txt 2>&1; then
  echo "FATAL: serve smoke accepted the seeded stale-snapshot cache bug" >&2
  exit 1
fi
echo "serve smoke: seeded stale-snapshot bug correctly caught"

# Snapshot the committed benchmarks before the bench loop overwrites the
# reports with this run's numbers; the regression gates below diff the
# fresh reports against these.
cp BENCH_pipeline.json results/BENCH_baseline.json
cp BENCH_serve.json results/BENCH_serve_baseline.json

for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  if [ "$name" = "bench_micro" ]; then
    # google-benchmark binary: takes no world-scale argument.
    "$bench" | tee "results/$name.txt"
  else
    "$bench" "${IPSCOPE_BLOCKS:-4000}" | tee "results/$name.txt"
  fi
done

# Benchmark-regression gate: diff this run's bench-JSON v2 report against
# the committed baseline. On matching hardware + toolchain a stage that
# slowed beyond the tolerance exits non-zero and fails the run (set -e); on
# a different host the diff is advisory (benchdiff prints why) but lost
# stages/runs still gate. Tune with IPSCOPE_BENCH_TOLERANCE_PCT.
echo "== benchdiff gate"
build/tools/ipscope_cli benchdiff results/BENCH_baseline.json \
  BENCH_pipeline.json \
  --tolerance-pct "${IPSCOPE_BENCH_TOLERANCE_PCT:-25}" \
  | tee results/benchdiff.txt
build/tools/ipscope_cli benchdiff results/BENCH_serve_baseline.json \
  BENCH_serve.json \
  --tolerance-pct "${IPSCOPE_BENCH_TOLERANCE_PCT:-25}" \
  | tee results/benchdiff_serve.txt

# Headline throughput delta for the store_build hot path: this run's MB/s
# against the committed baseline (first run of each report — threads=1).
# Advisory print only; the regression gate above is what fails the run.
awk '
  /"store_build"/ && match($0, /"mb_per_s": [0-9.eE+-]+/) {
    v = substr($0, RSTART + 12, RLENGTH - 12) + 0
    if (NR == FNR) { if (base == 0) base = v }
    else if (cur == 0) cur = v
  }
  END {
    if (base > 0 && cur > 0)
      printf "store_build throughput: %.2f MB/s vs baseline %.2f MB/s (%.2fx)\n",
             cur, base, cur / base
    else
      print "store_build throughput: baseline or current MB/s not found"
  }' results/BENCH_baseline.json BENCH_pipeline.json \
  | tee results/store_build_delta.txt

# Prove the gate has teeth on every run: seed an obvious store_build
# regression into a copy of the fresh report (same hardware fingerprint, so
# it MUST gate) and require benchdiff to reject it.
sed 's/"store_build": {"seconds": [0-9.eE+-]*/"store_build": {"seconds": 9999/' \
  BENCH_pipeline.json > results/BENCH_seeded_regression.json
grep -q '"seconds": 9999' results/BENCH_seeded_regression.json \
  || { echo "FATAL: could not seed a regression into the report" >&2; exit 1; }
if build/tools/ipscope_cli benchdiff BENCH_pipeline.json \
    results/BENCH_seeded_regression.json >results/benchdiff_teeth.txt 2>&1; then
  echo "FATAL: benchdiff accepted a seeded 9999s regression" >&2
  exit 1
fi
echo "benchdiff gate: seeded regression correctly rejected"

echo "All experiment outputs written to results/."
