#!/usr/bin/env bash
# Build, test, and regenerate every paper experiment into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)"

mkdir -p results
for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  if [ "$name" = "bench_micro" ]; then
    # google-benchmark binary: takes no world-scale argument.
    "$bench" | tee "results/$name.txt"
  else
    "$bench" "${IPSCOPE_BLOCKS:-4000}" | tee "results/$name.txt"
  fi
done
echo "All experiment outputs written to results/."
