#!/usr/bin/env bash
# Static analysis entry point: the project-contract analyzer always runs
# (it is built from this repo with no external deps); clang-tidy runs when
# installed and is skipped with a warning when not, so the build stays
# dependency-free.
#
#   scripts/lint.sh [build-dir]     # default build dir: build/
#
# Exit non-zero when ipscope_lint finds an unsuppressed violation, the
# self-test fails, or clang-tidy (if present) reports an error.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if [ ! -x "$BUILD_DIR/tools/lint/ipscope_lint" ]; then
  echo "lint.sh: building ipscope_lint in $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target ipscope_lint -j >/dev/null
fi

echo "== ipscope_lint self-test"
"$BUILD_DIR/tools/lint/ipscope_lint" --self-test --corpus tests/lint_corpus

# Incremental: per-file facts are cached in $BUILD_DIR/lint-cache keyed on
# content CRC, so a rescan after a small edit re-extracts only the edited
# files (the binary prints scan time and the cache hit rate).
echo "== ipscope_lint tree scan"
"$BUILD_DIR/tools/lint/ipscope_lint" --root . \
  --cache-dir "$BUILD_DIR/lint-cache"

if command -v clang-tidy >/dev/null 2>&1; then
  # CMAKE_EXPORT_COMPILE_COMMANDS=ON (top-level CMakeLists) provides the
  # compilation database clang-tidy needs.
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null
  fi
  echo "== clang-tidy (.clang-tidy profile)"
  # Library + tool sources; tests/bench inherit the same headers.
  mapfile -t files < <(find src tools -name '*.cc' | sort)
  clang-tidy -p "$BUILD_DIR" --quiet "${files[@]}"
else
  echo "lint.sh: warning: clang-tidy not installed; skipping the" \
       "clang-tidy pass (project contracts were still checked by" \
       "ipscope_lint)" >&2
fi
